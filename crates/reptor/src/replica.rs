//! The PBFT replica, parallelized with Consensus-Oriented Parallelization
//! (COP).
//!
//! Implements Castro & Liskov's PBFT \[14\] as used by Reptor \[10\]:
//! pre-prepare/prepare/commit agreement with MAC-vector authentication,
//! batching, checkpoint-based log truncation, and view changes. Agreement
//! is partitioned into `p` independent [`crate::pipeline::Pipeline`]s —
//! pipeline `l` owns every sequence number with `seq mod p == l`, runs its
//! own pre-prepare/prepare/commit state machine, and is pinned to a
//! dedicated simulated core via [`simnet::CoreAffinity`], so whole protocol
//! instances (not functional stages) genuinely overlap in simulated time.
//! Committed batches flow into the deterministic
//! [`crate::executor::Executor`], which totally orders them by sequence
//! number before the sequential service applies them on the execution core
//! (core 0). View changes, checkpoints and catch-up span all pipelines and
//! remain coordinated here.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use bft_crypto::{Digest, KeyTable};
use simnet::{CoreAffinity, CoreId, HostId, Nanos, Network, SimDisk, Simulator};

use crate::config::ReptorConfig;
use crate::durability::{DurableStore, WalFrame};
use crate::executor::Executor;
use crate::messages::{
    batch_digest, ClientId, Message, PreparedProof, ReplicaId, Request, SeqNum, SignedMessage,
    View, MANIFEST_CHUNK,
};
use crate::pipeline::{Instance, Pipeline, PipelineStats};
use crate::state::{RegionWrite, StateMachine};
use crate::state_transfer::{
    CheckpointPayload, CheckpointStore, ChunkVerdict, StateOffer, Transfer, CHUNK_SIZE,
};
use crate::transport::{SlotRegion, Transport};

/// Fault-injection modes for a replica (the Byzantine behaviours the
/// protocol must tolerate, up to `f` of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzantineMode {
    /// Correct behaviour.
    #[default]
    Honest,
    /// Crashed: ignores everything and sends nothing.
    Crash,
    /// As primary, never proposes (provokes view changes); otherwise
    /// behaves correctly.
    SilentPrimary,
    /// As primary, sends conflicting proposals for the same sequence
    /// number to different halves of the group.
    EquivocatingPrimary,
    /// Sends messages whose MACs do not verify (receivers must drop them).
    CorruptMacs,
    /// Serves corrupted checkpoint-store bytes to state-transferring peers
    /// (both over `StateChunk` messages and through its registered RDMA
    /// region); otherwise behaves correctly. Fetchers detect the chunks by
    /// digest mismatch against the certified manifest.
    BogusStateChunks,
    /// Answers state-transfer traffic with its *previous* checkpoint's
    /// bytes and attests stale checkpoints during catch-up; fetchers detect
    /// the manifest root mismatch and route around.
    StaleCheckpoint,
    /// After a recovery-epoch roll, keeps advertising the rkey of its
    /// *previous* epoch's (invalidated) store region, re-tagged with the
    /// current epoch so the advisory epoch field looks fresh. The lie is
    /// undetectable by digest checks — the attested root is honest — and
    /// is caught only by the responder RNIC refusing the revoked rkey
    /// (`stale_rkey_denied`); fetchers route around on the failed READ.
    StaleEpochOffer,
    /// Advertises a *revoked* read-lease rkey in its LEASE-GRANT answers:
    /// the replica registers its applied-state region, immediately
    /// invalidates it, registers a fresh one for its own use, and hands
    /// clients the dead rkey. As with [`ByzantineMode::StaleEpochOffer`]
    /// the lie is undetectable from the grant itself — only
    /// the replica's RNIC refusing the revoked rkey exposes it
    /// (`stale_rkey_denied`); clients fall back to the message path and
    /// rotate their read quorum to correct replicas.
    StaleLeaseOffer,
    /// Publishes *forged* cells into its own validly-leased read region:
    /// every committed cell write lands with its (even) version stamp
    /// inflated by [`FORGE_STAMP_BOOST`] and its value bytes scribbled
    /// over — a fabricated out-of-history state behind a lease the RNIC
    /// will happily serve. No rkey fence can catch this: the region is
    /// live and the READ succeeds. The defense is the client's unanimity
    /// rule — a fabricated (stamp, value) can never gather `f + 1`
    /// honest look-alikes, so forged cells only break quorum agreement
    /// (`kv_read_divergent`), the read falls back to agreement, and the
    /// out-voted forger is demerited out of future read quorums.
    ForgedLeaseCells,
    /// As primary, never proposes (provoking its own deposition); once it
    /// learns of the new view it fires fast-path slot WRITEs with the
    /// grants of its *revoked* leadership. The followers invalidated those
    /// regions the moment they voted, so every late WRITE is denied in
    /// their RNICs (`fast_path_write_denied`) — the stale proposals never
    /// reach a slot.
    LateSlotWriter,
}

/// Per-replica counters used by tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Batches executed.
    pub executed_batches: u64,
    /// Individual requests executed.
    pub executed_requests: u64,
    /// PRE-PREPAREs sent (primary).
    pub pre_prepares_sent: u64,
    /// PREPAREs sent.
    pub prepares_sent: u64,
    /// COMMITs sent.
    pub commits_sent: u64,
    /// REPLYs sent to clients.
    pub replies_sent: u64,
    /// Checkpoints that became stable.
    pub stable_checkpoints: u64,
    /// VIEW-CHANGE messages sent.
    pub view_changes_sent: u64,
    /// View changes stood down after the replica caught up instead.
    pub view_changes_abandoned: u64,
    /// CATCH-UP-REQUEST broadcasts sent while suspecting a gap.
    pub catch_up_requests_sent: u64,
    /// CATCH-UP-REPLY instances re-sent to lagging peers.
    pub catch_up_replies_sent: u64,
    /// Instances committed locally from `f + 1` catch-up certificates.
    pub catch_ups_applied: u64,
    /// Catch-up requests answered with a truncated (paginated) reply set.
    pub catch_up_replies_truncated: u64,
    /// Checkpoint state transfers started.
    pub state_transfers_started: u64,
    /// Checkpoint state transfers completed and installed.
    pub state_transfers_completed: u64,
    /// Responder switches and timeout re-drives during state transfer.
    pub state_transfer_retries: u64,
    /// Messages dropped for failing MAC verification.
    pub bad_mac_dropped: u64,
    /// Messages dropped as malformed.
    pub malformed_dropped: u64,
    /// State requests rejected for carrying a stale recovery epoch (the
    /// message-path mirror of the RNIC rkey fence).
    pub stale_epoch_rejected: u64,
    /// Recovery-epoch rolls applied (MR rotations).
    pub epoch_rolls: u64,
    /// Fast-path slot WRITEs posted as leader.
    pub fast_path_writes: u64,
    /// Proposals (per peer) that fell back to a message-path PRE-PREPARE
    /// while the fast path was on.
    pub fast_path_fallbacks: u64,
    /// Fast-path slot deliveries accepted from the doorbell (follower).
    pub fast_path_deliveries: u64,
}

/// Fixed byte size of one fast-path pre-prepare slot. A batch whose
/// encoded PRE-PREPARE exceeds this falls back to the message path for
/// that proposal (the slot region layout is static per view).
pub(crate) const FAST_PATH_SLOT_SIZE: u64 = 4096;

/// Delay between staging a cell's odd (torn) version stamp and publishing
/// the full committed cell in the leased read region. Strictly below any
/// simulated one-way network latency, so by the time a client's write
/// completion (which requires `f + 1` replies to cross the network) is
/// observable, every replica that executed the write has long since
/// published the committed cell. One-sided READs racing the window see
/// the torn stamp and fall back to the message path.
pub const LEASE_TORN_WINDOW: Nanos = Nanos::from_nanos(1_000);

/// Stamp inflation a [`ByzantineMode::ForgedLeaseCells`] replica applies
/// to every cell it publishes: large and even, so the forged cell decodes
/// as a perfectly committed state far newer than anything honest replicas
/// have applied. A max-stamp reader would swallow it; a unanimity reader
/// sees it disagree with every honest cell and falls back.
pub const FORGE_STAMP_BOOST: u64 = 1 << 20;

/// A follower's WRITE grant as retained by the leader it names: the rkey
/// of the follower's slot region plus the layout to index it with.
#[derive(Debug, Clone, Copy)]
struct SlotGrantInfo {
    view: View,
    rkey: u32,
    slot_size: u64,
    slots: u64,
}

struct ReplicaInner {
    id: ReplicaId,
    cfg: ReptorConfig,
    keys: KeyTable,
    transport: Rc<dyn Transport>,
    net: Network,
    host: HostId,
    service: Box<dyn StateMachine>,
    byzantine: ByzantineMode,

    view: View,
    in_view_change: bool,
    next_seq: SeqNum,
    low_mark: SeqNum,
    /// The COP agreement pipelines: pipeline `l` owns `seq mod p == l`.
    pipelines: Vec<Pipeline>,
    /// The static pipeline → core map (core 0 reserved for execution).
    affinity: CoreAffinity,
    /// The deterministic total-order execution stage.
    executor: Executor,
    pending: VecDeque<Request>,
    proposed: HashSet<(ClientId, u64)>,
    client_state: HashMap<ClientId, (u64, Vec<u8>)>,
    /// `seq → digest → voter → read offer`, for checkpoint certificates.
    /// The offer piggybacked on each vote tells a fetcher where that
    /// attester's store can be READ one-sided.
    checkpoint_votes: BTreeMap<SeqNum, HashMap<Digest, HashMap<ReplicaId, StateOffer>>>,
    own_checkpoints: BTreeMap<SeqNum, Digest>,
    /// Sealed checkpoint stores this replica can serve, newest last. The
    /// latest and the previous are retained (the previous keeps in-flight
    /// remote reads of the old store valid across a checkpoint).
    stores: BTreeMap<SeqNum, (CheckpointStore, StateOffer)>,
    /// In-progress fetch-side state transfer, if any.
    transfer: Option<Transfer>,
    /// Current proactive-recovery epoch. Advanced by
    /// [`Replica::roll_recovery_epoch`]; every store offer advertised and
    /// every `StateRequest` served is tagged/checked against it.
    recovery_epoch: u64,
    /// A `StaleEpochOffer` responder's recorded previous-epoch offer (the
    /// rkey/len of the region invalidated at the last roll).
    stale_offer: Option<StateOffer>,
    /// A checkpoint certified by `2f + 1` votes that this replica has not
    /// executed up to yet: stabilization is deferred until execution (or a
    /// state transfer) reaches it.
    pending_stable: Option<(SeqNum, Digest)>,
    /// `view → voter → (last_stable, prepared proofs)`.
    vc_votes: BTreeMap<View, BTreeMap<ReplicaId, (SeqNum, Vec<PreparedProof>)>>,
    /// `seq → digest → (voters, batch)` for catch-up certificates: `f + 1`
    /// matching CATCH-UP-REPLYs commit the instance locally.
    #[allow(clippy::type_complexity)]
    catch_up_votes:
        BTreeMap<SeqNum, HashMap<Digest, (HashSet<ReplicaId>, Option<(View, Vec<Request>)>)>>,
    /// Instant of the last CATCH-UP-REQUEST broadcast (rate limiting —
    /// every stalled request's timer funnels into the same recovery path).
    last_catch_up_at: u64,
    /// Highest view this replica has voted for.
    voted_view: View,
    /// Consecutive unfinished view-change attempts (exponential backoff).
    vc_attempts: u32,
    /// Outbound serialization horizon: sends leave the replica in
    /// submission order (the comm stack's single sender queue).
    send_horizon: Nanos,
    stats: ReplicaStats,
    /// Shared registry plus this replica's `reptor.r{id}.` key prefix.
    metrics: simnet::Metrics,
    metrics_prefix: String,
    /// Request arrival instants, consumed when a request first appears in
    /// an accepted pre-prepare (feeds `phase.request_to_preprepare`).
    arrivals: HashMap<(ClientId, u64), Nanos>,
    /// One-sided fast path: this replica's registered pre-prepare slot
    /// region (the target of the granted leader's WRITEs), if any.
    slot_region: Option<SlotRegion>,
    /// The view whose leader currently holds the WRITE grant for
    /// `slot_region` (`None` while revoked, e.g. during a view change).
    slot_granted_to: Option<View>,
    /// Leader side: WRITE grants received from followers.
    slot_grants: HashMap<ReplicaId, SlotGrantInfo>,
    /// Slot index → occupying sequence number: the slot-reuse fence. A
    /// slot is recycled only once its occupant left the agreement window
    /// through a stable checkpoint.
    slot_seqs: HashMap<u64, SeqNum>,
    /// Whether the lazy initial (view-0) slot grant has run.
    fast_path_armed: bool,
    /// Agreement-free reads: the currently registered applied-state
    /// region lease, if any (`cfg.read_leases` plus a service exposing a
    /// region image plus a one-sided transport).
    read_lease: Option<StateOffer>,
    /// A `StaleLeaseOffer` replica's recorded revoked lease — the dead
    /// rkey it advertises to clients instead of `read_lease`.
    stale_lease: Option<StateOffer>,
    /// Whether the lazy initial lease registration has run.
    lease_armed: bool,
    /// Local persistence layer (WAL + snapshot slots on a simulated
    /// drive). Deliberately NOT wiped by [`Replica::restart`] — it models
    /// the durable medium the restart recovers from.
    durable: Option<DurableStore>,
    /// Consecutive rejoin probes fired since the last completed state
    /// transfer — the backoff tier. Reset on restart and on transfer
    /// completion so a second crash starts probing at the base period.
    rejoin_attempts: u32,
    /// Bumped on every restart; a probe chain armed under an older
    /// generation aborts instead of competing with the new chain.
    rejoin_generation: u64,
}

/// A PBFT replica.
#[derive(Clone)]
pub struct Replica {
    inner: Rc<RefCell<ReplicaInner>>,
}

impl fmt::Debug for Replica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Replica")
            .field("id", &inner.id)
            .field("view", &inner.view)
            .field("last_executed", &inner.executor.last_executed)
            .field("pipelines", &inner.pipelines.len())
            .field("in_view_change", &inner.in_view_change)
            .finish()
    }
}

impl Replica {
    /// Creates a replica and wires it to `transport`'s delivery callback.
    pub fn new(
        id: ReplicaId,
        cfg: ReptorConfig,
        domain_secret: &[u8],
        transport: Rc<dyn Transport>,
        net: &Network,
        host: HostId,
        service: Box<dyn StateMachine>,
    ) -> Replica {
        cfg.validate();
        // Pin each pipeline to a simulated core up front: core 0 stays the
        // execution core, lanes spread over cores 1.. and wrap when there
        // are more pipelines than agreement cores.
        let num_cores = net.host(host).borrow().num_cores();
        let affinity = CoreAffinity::new(num_cores, cfg.pillars);
        let pipelines: Vec<Pipeline> = (0..cfg.pillars)
            .map(|lane| Pipeline::new(lane, affinity.lane_core(lane)))
            .collect();
        let lanes = pipelines.len();
        let durable = cfg.durability.map(|d| {
            let disk = SimDisk::new(format!("r{id}"), d.device, net.metrics());
            DurableStore::new(
                disk,
                d.wal,
                d.snapshot_every,
                net.metrics(),
                format!("reptor.r{id}."),
            )
        });
        let replica = Replica {
            inner: Rc::new(RefCell::new(ReplicaInner {
                id,
                keys: KeyTable::new(id, domain_secret.to_vec()),
                cfg,
                transport: transport.clone(),
                net: net.clone(),
                host,
                service,
                byzantine: ByzantineMode::Honest,
                view: 0,
                in_view_change: false,
                next_seq: 1,
                low_mark: 0,
                pipelines,
                affinity,
                executor: Executor::new(),
                pending: VecDeque::new(),
                proposed: HashSet::new(),
                client_state: HashMap::new(),
                checkpoint_votes: BTreeMap::new(),
                own_checkpoints: BTreeMap::new(),
                stores: BTreeMap::new(),
                transfer: None,
                recovery_epoch: 0,
                stale_offer: None,
                pending_stable: None,
                vc_votes: BTreeMap::new(),
                catch_up_votes: BTreeMap::new(),
                last_catch_up_at: 0,
                voted_view: 0,
                vc_attempts: 0,
                send_horizon: Nanos::ZERO,
                stats: ReplicaStats::default(),
                metrics: net.metrics(),
                metrics_prefix: format!("reptor.r{id}."),
                arrivals: HashMap::new(),
                slot_region: None,
                slot_granted_to: None,
                slot_grants: HashMap::new(),
                slot_seqs: HashMap::new(),
                fast_path_armed: false,
                read_lease: None,
                stale_lease: None,
                lease_armed: false,
                durable,
                rejoin_attempts: 0,
                rejoin_generation: 0,
            })),
        };
        // Inbound demultiplexing: the transport peeks the sequence number
        // out of the wire frame and routes agreement traffic to its owning
        // pipeline (lane 0 carries everything without a sequence number).
        let r = replica.clone();
        transport.set_lane_delivery(
            lanes,
            Rc::new(move |sim, lane, from, bytes| {
                r.on_raw(sim, lane, from, bytes);
            }),
        );
        // Fast-path doorbell: a one-sided WRITE that landed in this
        // replica's slot region surfaces here with the slot index as the
        // immediate (no-op on transports without one-sided writes).
        let r = replica.clone();
        transport.set_slot_doorbell(Rc::new(move |sim, peer, imm, len| {
            r.on_slot_doorbell(sim, peer, imm, len);
        }));
        replica
    }

    /// Sets the fault-injection mode.
    pub fn set_byzantine(&self, mode: ByzantineMode) {
        self.inner.borrow_mut().byzantine = mode;
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.inner.borrow().id
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.inner.borrow().view
    }

    /// Highest contiguously executed sequence number.
    pub fn last_executed(&self) -> SeqNum {
        self.inner.borrow().executor.last_executed
    }

    /// Per-pipeline progress counters (one entry per COP pipeline).
    pub fn pipeline_stats(&self) -> Vec<PipelineStats> {
        self.inner
            .borrow()
            .pipelines
            .iter()
            .map(Pipeline::stats)
            .collect()
    }

    /// Stable low watermark.
    pub fn low_mark(&self) -> SeqNum {
        self.inner.borrow().low_mark
    }

    /// The simulated drive backing this replica's durability layer, if
    /// configured. Chaos scenarios arm write faults on it; the handle
    /// stays valid across restarts (it models the physical medium).
    pub fn durable_disk(&self) -> Option<SimDisk> {
        self.inner
            .borrow()
            .durable
            .as_ref()
            .map(|d| d.disk().clone())
    }

    /// Whether `seq` falls inside the agreement window (test hook).
    #[cfg(test)]
    pub(crate) fn in_watermarks(&self, seq: SeqNum) -> bool {
        self.inner.borrow().in_watermarks(seq)
    }

    /// Claims the fast-path slot for `seq` (test hook for the slot
    /// reuse/GC rules — see [`ReplicaInner::slot_accept`]).
    #[cfg(test)]
    pub(crate) fn slot_accept_for_test(&self, seq: SeqNum) -> bool {
        self.inner.borrow_mut().slot_accept(seq)
    }

    /// Simulates checkpoint GC at stable sequence `seq`: advances the low
    /// watermark and retires fast-path slot occupants at or below it.
    #[cfg(test)]
    pub(crate) fn gc_slots_for_test(&self, seq: SeqNum) {
        let mut inner = self.inner.borrow_mut();
        inner.low_mark = seq;
        inner.slot_seqs.retain(|_, s| *s > seq);
    }

    /// True if this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        let inner = self.inner.borrow();
        inner.cfg.primary(inner.view) == inner.id
    }

    /// The executed `(seq, digest)` history (safety checks).
    pub fn executed_log(&self) -> Vec<(SeqNum, Digest)> {
        self.inner.borrow().executor.executed_log.clone()
    }

    /// Counters.
    pub fn stats(&self) -> ReplicaStats {
        self.inner.borrow().stats
    }

    /// The recovery epoch this replica currently tags its store offers
    /// with (and checks inbound `StateRequest`s against).
    pub fn recovery_epoch(&self) -> u64 {
        self.inner.borrow().recovery_epoch
    }

    /// True while a checkpoint state transfer is in flight. The recovery
    /// scheduler polls this to decide when a refreshed replica has fully
    /// rejoined and the rotation can move on to the next one.
    pub fn transfer_in_progress(&self) -> bool {
        self.inner.borrow().transfer.is_some()
    }

    /// Advances this replica's recovery epoch to `epoch` (monotone: stale
    /// or duplicate rolls are ignored). Every registered checkpoint-store
    /// region is re-registered under the new epoch and the previous
    /// region released — release invalidates the backing memory region, so
    /// any rkey still circulating from the old epoch is refused by the
    /// responder-side RNIC permission check rather than by a digest
    /// comparison. Fresh votes re-attesting the retained store roots are
    /// broadcast so peers (in particular any in-flight fetcher) learn the
    /// re-registered offers.
    pub fn roll_recovery_epoch(&self, sim: &mut Simulator, epoch: u64) {
        let (to_roll, transport) = {
            let mut inner = self.inner.borrow_mut();
            if epoch <= inner.recovery_epoch {
                return;
            }
            inner.recovery_epoch = epoch;
            inner.stats.epoch_rolls += 1;
            inner.bump("epoch_rolls", 1);
            inner.metrics.trace(
                sim.now(),
                "reptor",
                format!("{}recovery_epoch_roll epoch={epoch}", inner.metrics_prefix),
            );
            if inner.byzantine == ByzantineMode::Crash {
                return;
            }
            // Every store's advertised offer is re-stamped with the new
            // epoch; RDMA-readable stores additionally move to a fresh
            // memory region so the old rkey is revoked at the NIC. Stacks
            // without one-sided READs (no registered region) still roll
            // the epoch so stale `StateRequest`s die at the responder.
            let to_roll: Vec<(SeqNum, Option<Vec<u8>>)> = inner
                .stores
                .iter()
                .map(|(&s, (store, offer))| (s, offer.readable().then(|| store.bytes().to_vec())))
                .collect();
            (to_roll, inner.transport.clone())
        };
        let mut msgs = Vec::new();
        let mut released = Vec::new();
        for (seq, bytes) in to_roll {
            let minted = bytes
                .as_ref()
                .and_then(|b| transport.register_state_region(sim, b));
            let msg = {
                let mut inner = self.inner.borrow_mut();
                let me = inner.id;
                let Some(entry) = inner.stores.get_mut(&seq) else {
                    // The store was garbage-collected while re-registering;
                    // drop the fresh region instead of leaking it.
                    if let Some(o) = minted {
                        drop(inner);
                        transport.release_state_region(&o);
                    }
                    continue;
                };
                let old = entry.1;
                let mut offer = minted.unwrap_or(old);
                offer.epoch = epoch;
                entry.1 = offer;
                let rotated = offer.rkey != old.rkey;
                let root = entry.0.root();
                if rotated && inner.byzantine == ByzantineMode::StaleEpochOffer {
                    // Remember the revoked offer: this is the rkey the
                    // Byzantine replica will keep advertising.
                    inner.stale_offer = Some(old);
                }
                let advertised = inner.advertised_offer(offer);
                if let Some(votes) = inner
                    .checkpoint_votes
                    .get_mut(&seq)
                    .and_then(|m| m.get_mut(&root))
                {
                    votes.insert(me, advertised);
                }
                if rotated {
                    released.push(old);
                }
                Message::Checkpoint {
                    seq,
                    state_digest: root,
                    replica: me,
                    store_rkey: advertised.rkey,
                    store_len: advertised.len,
                    store_epoch: advertised.epoch,
                }
            };
            msgs.push(msg);
        }
        if !released.is_empty() {
            self.inner
                .borrow_mut()
                .bump("mr_rotations", released.len() as u64);
        }
        for old in &released {
            transport.release_state_region(old);
        }
        for msg in msgs {
            self.broadcast_to_replicas(sim, msg);
        }
        // The read lease joins the roll: its region moves to a fresh rkey
        // under the new epoch, so clients holding the pre-roll lease are
        // RNIC-denied and re-query.
        self.roll_read_lease(sim);
    }

    /// Runs `f` against the replica's service (state inspection in tests).
    pub fn with_service<R>(&self, f: impl FnOnce(&dyn StateMachine) -> R) -> R {
        f(self.inner.borrow().service.as_ref())
    }

    /// Injects an already-authenticated protocol message directly into the
    /// replica's dispatcher — adversarial-testing hook modelling a
    /// Byzantine peer whose MACs verify (it holds valid session keys) but
    /// whose message content is hostile.
    pub fn inject_message(&self, sim: &mut Simulator, msg: Message) {
        if self.inner.borrow().byzantine == ByzantineMode::Crash {
            return;
        }
        self.dispatch(sim, msg);
    }

    /// Restarts the replica cold: every piece of volatile state —
    /// agreement logs, executor position, client session table, sealed
    /// checkpoint stores — is wiped, and the service is replaced with
    /// `service` (a fresh, empty instance from the same factory). The
    /// replica rejoins by broadcasting a catch-up request; peers answer
    /// the unservable request with checkpoint attestations, and `f + 1`
    /// matching ones trigger a full state transfer back to the group's
    /// latest stable checkpoint.
    pub fn restart(&self, sim: &mut Simulator, service: Box<dyn StateMachine>) {
        let (released, transport) = {
            let mut inner = self.inner.borrow_mut();
            inner.byzantine = ByzantineMode::Honest;
            inner.service = service;
            inner.view = 0;
            inner.in_view_change = false;
            inner.next_seq = 1;
            inner.low_mark = 0;
            let pipelines: Vec<Pipeline> = (0..inner.cfg.pillars)
                .map(|lane| Pipeline::new(lane, inner.affinity.lane_core(lane)))
                .collect();
            inner.pipelines = pipelines;
            inner.executor = Executor::new();
            inner.pending.clear();
            inner.proposed.clear();
            inner.client_state.clear();
            inner.checkpoint_votes.clear();
            inner.own_checkpoints.clear();
            inner.vc_votes.clear();
            inner.catch_up_votes.clear();
            inner.last_catch_up_at = 0;
            inner.voted_view = 0;
            inner.vc_attempts = 0;
            inner.transfer = None;
            // The recovery epoch survives a restart: it is local wall-clock
            // bookkeeping, not replicated state, and the scheduler that
            // restarted this replica expects its offers to stay
            // current-epoch-tagged.
            inner.stale_offer = None;
            inner.pending_stable = None;
            inner.arrivals.clear();
            let released: Vec<StateOffer> = inner
                .stores
                .values()
                .map(|(_, offer)| *offer)
                .filter(|o| o.readable())
                .collect();
            inner.stores.clear();
            inner.slot_grants.clear();
            inner.slot_seqs.clear();
            inner.slot_granted_to = None;
            inner.fast_path_armed = false;
            let slot_region = inner.slot_region.take();
            // The pre-crash read lease MUST be revoked before the WAL
            // replays below: the restarted service starts empty, and a
            // surviving rkey would let clients one-sided-READ the stale
            // pre-crash region image while recovery is still rebuilding.
            let read_lease = inner.read_lease.take();
            inner.stale_lease = None;
            inner.lease_armed = false;
            inner.rejoin_attempts = 0;
            inner.rejoin_generation += 1;
            inner.bump("restarts", 1);
            inner.metrics.trace(
                sim.now(),
                "reptor",
                format!("{}restart", inner.metrics_prefix),
            );
            ((released, slot_region, read_lease), inner.transport.clone())
        };
        let (released, slot_region, read_lease) = released;
        for offer in &released {
            transport.release_state_region(offer);
        }
        if let Some(region) = slot_region {
            transport.release_write_region(&region);
        }
        if let Some(lease) = read_lease {
            transport.release_state_region(&lease);
            self.inner.borrow_mut().bump("lease_revocations", 1);
        }
        // Crash-consistent cold path: rebuild as much as the local drive
        // holds before asking peers for the rest.
        self.durable_recover(sim);
        self.request_catch_up(sim);
        self.arm_rejoin_probe(sim);
    }

    /// Replays local durable state after a cold restart: install the best
    /// snapshot slot, replay the clean WAL prefix through the executor,
    /// and re-seal a checkpoint if replay ended exactly on an interval
    /// boundary. Whatever is still missing afterwards — torn tail, lost
    /// snapshot, history past the crash point — is fetched from peers via
    /// the ordinary state-transfer path, now shrunk to a delta.
    fn durable_recover(&self, sim: &mut Simulator) {
        if self.inner.borrow().durable.is_none() {
            return;
        }
        let now = sim.now();
        let rec = {
            let mut inner = self.inner.borrow_mut();
            let ReplicaInner { durable, .. } = &mut *inner;
            durable.as_mut().expect("checked above").recover(now)
        };
        if let Some((seq, payload)) = rec.snapshot {
            let installed = {
                let mut inner = self.inner.borrow_mut();
                match CheckpointPayload::decode(&payload) {
                    Some(cp) if inner.service.restore(&cp.service_snapshot) => {
                        inner.client_state = cp
                            .clients
                            .iter()
                            .map(|(c, ts, reply)| (*c, (*ts, reply.clone())))
                            .collect();
                        inner.executor.fast_forward(seq);
                        inner.low_mark = seq;
                        inner.next_seq = seq + 1;
                        inner.bump("durable_restores", 1);
                        true
                    }
                    // A CRC-valid slot that does not decode or restore
                    // means corruption below the CRC's reach; treat it
                    // like a corrupt slot and lean on peers.
                    _ => {
                        inner.bump("snapshot_corrupt_fallback", 1);
                        false
                    }
                }
            };
            if !installed {
                // The snapshot is unusable, so the WAL (which starts past
                // it) cannot be replayed either.
                self.trace_recover(sim, 0);
                return;
            }
        }
        let mut replayed = 0u64;
        {
            let mut inner = self.inner.borrow_mut();
            for frame in &rec.frames {
                if frame.seq != inner.executor.last_executed + 1 {
                    continue;
                }
                for req in &frame.requests {
                    let stale = inner
                        .client_state
                        .get(&req.client)
                        .is_some_and(|(ts, _)| *ts >= req.timestamp);
                    if stale {
                        continue;
                    }
                    let cost = inner.service.op_cost(req);
                    inner.charge(sim, CoreId(0), cost);
                    let result = inner.service.apply(req);
                    inner
                        .client_state
                        .insert(req.client, (req.timestamp, result));
                }
                inner.executor.replay_record(frame.seq, frame.digest);
                replayed += 1;
            }
            if replayed > 0 {
                inner.next_seq = inner.executor.last_executed + 1;
                inner.bump("wal_frames_replayed", replayed);
            }
        }
        // Re-seal and attest the recovered position when it lands exactly
        // on a checkpoint boundary (a snapshot always does; WAL replay
        // only sometimes). The broadcast vote tells peers this replica is
        // provisioned — on a full-cluster restart those votes re-certify
        // the checkpoint with zero state fetched.
        let seal = {
            let inner = self.inner.borrow();
            let le = inner.executor.last_executed;
            (le > 0 && le.is_multiple_of(inner.cfg.checkpoint_interval)).then_some(le)
        };
        if let Some(seq) = seal {
            self.make_checkpoint(sim, seq);
        }
        self.trace_recover(sim, replayed);
    }

    fn trace_recover(&self, sim: &mut Simulator, replayed: u64) {
        let inner = self.inner.borrow();
        inner.metrics.trace(
            sim.now(),
            "reptor",
            format!(
                "{}durable_recover le={} replayed={replayed}",
                inner.metrics_prefix, inner.executor.last_executed
            ),
        );
    }

    // ------------------------------------------------------------------
    // Inbound path
    // ------------------------------------------------------------------

    fn on_raw(&self, sim: &mut Simulator, lane: usize, _from: u32, bytes: Vec<u8>) {
        if self.inner.borrow().byzantine == ByzantineMode::Crash {
            return;
        }
        let signed = match SignedMessage::decode(&bytes) {
            Ok(s) => s,
            Err(_) => {
                self.inner.borrow_mut().stats.malformed_dropped += 1;
                return;
            }
        };
        // Charge MAC verification to the core of the pipeline that owns
        // this message's sequence number — the transport's lane demux
        // already derived it from the wire frame (lane 0 / core 0 for
        // non-agreement messages).
        let msg = {
            let mut inner = self.inner.borrow_mut();
            let verified = signed.verify_and_decode(&inner.keys);
            match verified {
                Err(_) => {
                    inner.stats.malformed_dropped += 1;
                    return;
                }
                Ok(None) => {
                    inner.stats.bad_mac_dropped += 1;
                    return;
                }
                Ok(Some(m)) => {
                    let core = inner.lane_core_for(lane, &m);
                    let cost = inner.cfg.crypto.verify_cost(signed.body.len());
                    inner.charge(sim, core, cost);
                    m
                }
            }
        };
        self.dispatch(sim, msg);
    }

    fn dispatch(&self, sim: &mut Simulator, msg: Message) {
        // Construction has no simulator handle, so the initial (view-0)
        // slot grant rides the first event this replica processes.
        self.maybe_arm_fast_path(sim);
        self.maybe_arm_read_lease(sim);
        match msg {
            Message::Request(req) => self.on_request(sim, req),
            Message::PrePrepare {
                view,
                seq,
                digest,
                batch,
            } => self.handle_pre_prepare(sim, view, seq, digest, batch),
            Message::Prepare {
                view,
                seq,
                digest,
                replica,
            } => self.handle_prepare(sim, view, seq, digest, replica),
            Message::Commit {
                view,
                seq,
                digest,
                replica,
            } => self.handle_commit(sim, view, seq, digest, replica),
            Message::Checkpoint {
                seq,
                state_digest,
                replica,
                store_rkey,
                store_len,
                store_epoch,
            } => self.handle_checkpoint(
                sim,
                seq,
                state_digest,
                replica,
                StateOffer {
                    rkey: store_rkey,
                    len: store_len,
                    epoch: store_epoch,
                },
            ),
            Message::ViewChange {
                new_view,
                last_stable,
                prepared,
                replica,
                ..
            } => self.handle_view_change(sim, new_view, last_stable, prepared, replica),
            Message::NewView {
                view,
                pre_prepares,
                replica,
            } => self.handle_new_view(sim, view, pre_prepares, replica),
            Message::CatchUpRequest { from_seq, replica } => {
                self.handle_catch_up_request(sim, from_seq, replica)
            }
            Message::CatchUpReply {
                seq,
                view,
                digest,
                batch,
                replica,
            } => self.handle_catch_up_reply(sim, seq, view, digest, batch, replica),
            Message::StateRequest {
                seq,
                chunk,
                replica,
                epoch,
            } => self.handle_state_request(sim, seq, chunk, replica, epoch),
            Message::StateChunk {
                seq,
                chunk,
                data,
                replica,
            } => self.handle_state_chunk(sim, seq, chunk, data, replica),
            Message::SlotGrant {
                view,
                replica,
                rkey,
                slot_size,
                slots,
            } => self.handle_slot_grant(view, replica, rkey, slot_size, slots),
            Message::LeaseQuery { client } => self.handle_lease_query(sim, client),
            Message::LeaseGrant { .. } => { /* replicas ignore lease grants */ }
            Message::Reply { .. } => { /* replicas ignore replies */ }
        }
    }

    /// Client request entry point (also used directly by the harness).
    pub fn on_request(&self, sim: &mut Simulator, req: Request) {
        self.maybe_arm_fast_path(sim);
        let resend = {
            let inner = self.inner.borrow_mut();
            if inner.byzantine == ByzantineMode::Crash {
                return;
            }
            match inner.client_state.get(&req.client) {
                Some((last_ts, _)) if req.timestamp < *last_ts => return, // stale
                Some((last_ts, result)) if req.timestamp == *last_ts => {
                    // Duplicate of the last executed request: resend reply.
                    Some((req.client, *last_ts, result.clone()))
                }
                _ => None,
            }
        };
        if let Some((client, ts, result)) = resend {
            self.send_reply(sim, client, ts, result);
            return;
        }

        let is_primary = {
            let mut inner = self.inner.borrow_mut();
            let key = (req.client, req.timestamp);
            // Every replica buffers the request: backups need it in case
            // they become primary after a view change.
            if !inner.proposed.contains(&key)
                && !inner.pending.iter().any(|r| (r.client, r.timestamp) == key)
            {
                inner.pending.push_back(req.clone());
                inner.arrivals.entry(key).or_insert_with(|| sim.now());
            }
            inner.cfg.primary(inner.view) == inner.id
        };
        if is_primary {
            self.try_propose(sim);
        } else {
            // Backup: arm the view-change timer for this request.
            self.arm_request_timer(sim, req);
        }
    }

    fn arm_request_timer(&self, sim: &mut Simulator, req: Request) {
        let (timeout, view_at_start) = {
            let inner = self.inner.borrow();
            (inner.cfg.view_change_timeout, inner.view)
        };
        let replica = self.clone();
        sim.schedule_in(
            timeout,
            Box::new(move |sim| {
                let expired = {
                    let inner = replica.inner.borrow();
                    if inner.byzantine == ByzantineMode::Crash {
                        return;
                    }
                    let executed = inner
                        .client_state
                        .get(&req.client)
                        .is_some_and(|(ts, _)| *ts >= req.timestamp);
                    !executed && inner.view == view_at_start && !inner.in_view_change
                };
                if expired {
                    // Ask before accusing: the stall may be this replica
                    // lagging (its commits were lost for good, e.g. MAC
                    // rejections), not a faulty primary. A premature
                    // VIEW-CHANGE vote is worse than a late one — the vote
                    // freezes a snapshot of prepared certificates, while a
                    // catch-up round costs one more timeout.
                    replica.request_catch_up(sim);
                    replica.arm_view_change_timer(sim, req.clone(), view_at_start);
                }
            }),
        );
    }

    /// Second-stage timer armed after a catch-up round was given a chance:
    /// if the request is still unexecuted in the same view, vote.
    fn arm_view_change_timer(&self, sim: &mut Simulator, req: Request, view_at_start: View) {
        let timeout = self.inner.borrow().cfg.view_change_timeout;
        let replica = self.clone();
        sim.schedule_in(
            timeout,
            Box::new(move |sim| {
                let expired = {
                    let inner = replica.inner.borrow();
                    if inner.byzantine == ByzantineMode::Crash {
                        return;
                    }
                    let executed = inner
                        .client_state
                        .get(&req.client)
                        .is_some_and(|(ts, _)| *ts >= req.timestamp);
                    !executed && inner.view == view_at_start && !inner.in_view_change
                };
                if expired {
                    replica.start_view_change(sim, view_at_start + 1);
                }
            }),
        );
    }

    /// Broadcasts a CATCH-UP-REQUEST for everything past `last_executed`.
    /// Rate-limited: every stalled request funnels here.
    fn request_catch_up(&self, sim: &mut Simulator) {
        let msg = {
            let mut inner = self.inner.borrow_mut();
            let gap = inner.cfg.view_change_timeout.as_nanos() / 2;
            let now = sim.now().as_nanos();
            if inner.last_catch_up_at != 0 && now < inner.last_catch_up_at + gap {
                return;
            }
            inner.last_catch_up_at = now;
            inner.stats.catch_up_requests_sent += 1;
            inner.bump("catch_up_requests_sent", 1);
            Message::CatchUpRequest {
                from_seq: inner.executor.last_executed + 1,
                replica: inner.id,
            }
        };
        self.broadcast_to_replicas(sim, msg);
    }

    // ------------------------------------------------------------------
    // Primary: proposing
    // ------------------------------------------------------------------

    fn try_propose(&self, sim: &mut Simulator) {
        loop {
            let proposal = {
                let mut inner = self.inner.borrow_mut();
                if inner.in_view_change
                    || inner.cfg.primary(inner.view) != inner.id
                    || inner.pending.is_empty()
                    || matches!(
                        inner.byzantine,
                        ByzantineMode::SilentPrimary
                            | ByzantineMode::Crash
                            | ByzantineMode::LateSlotWriter
                    )
                {
                    None
                } else {
                    let in_flight =
                        (inner.next_seq - 1).saturating_sub(inner.executor.last_executed);
                    let high_mark = inner.low_mark + 2 * inner.cfg.checkpoint_interval;
                    if in_flight >= inner.cfg.window as u64 || inner.next_seq > high_mark {
                        None
                    } else {
                        let mut batch: Vec<Request> = Vec::new();
                        while batch.len() < inner.cfg.batch_size {
                            let Some(r) = inner.pending.pop_front() else {
                                break;
                            };
                            let stale = inner
                                .client_state
                                .get(&r.client)
                                .is_some_and(|(ts, _)| *ts >= r.timestamp);
                            if stale || inner.proposed.contains(&(r.client, r.timestamp)) {
                                continue;
                            }
                            batch.push(r);
                        }
                        if batch.is_empty() {
                            return;
                        }
                        for r in &batch {
                            inner.proposed.insert((r.client, r.timestamp));
                        }
                        if inner.next_seq <= inner.executor.last_executed {
                            inner.next_seq = inner.executor.last_executed + 1;
                        }
                        let seq = inner.next_seq;
                        inner.next_seq += 1;
                        let digest = batch_digest(&batch);
                        let core = inner.affinity.seq_core(seq);
                        let cost = inner.cfg.crypto.digest_cost(batch_bytes(&batch));
                        inner.charge(sim, core, cost);
                        inner.stats.pre_prepares_sent += 1;
                        inner.bump("pre_prepares_sent", 1);
                        inner.observe(
                            "batch_fill_pct",
                            (batch.len() as u64 * 100) / inner.cfg.batch_size as u64,
                        );
                        Some((seq, digest, batch, inner.view, inner.byzantine))
                    }
                }
            };
            let Some((seq, digest, batch, view, byz)) = proposal else {
                return;
            };

            if byz == ByzantineMode::EquivocatingPrimary && !batch.is_empty() {
                // Conflicting proposals: half the group sees the real batch,
                // the other half sees it reversed (different order, different
                // digest when len > 1; with len == 1 the payload is tweaked).
                // With the fast path on, each half's version is WRITE-en
                // into that half's slots — the RNIC permission check cannot
                // see the equivocation (the leader legitimately holds every
                // grant), so detection stays where PBFT puts it: conflicting
                // prepares never reach a quorum and the view change fires.
                let mut alt = batch.clone();
                if alt.len() > 1 {
                    alt.reverse();
                } else {
                    alt[0].payload.push(0xEE);
                }
                let alt_digest = batch_digest(&alt);
                let n = self.inner.borrow().cfg.n as u32;
                let me = self.id();
                let half: Vec<u32> = (0..n).filter(|&r| r != me && r % 2 == 0).collect();
                let other: Vec<u32> = (0..n).filter(|&r| r != me && r % 2 == 1).collect();
                let half = self.propose_via_slots(sim, view, seq, digest, &batch, &half);
                self.send_msg(
                    sim,
                    Message::PrePrepare {
                        view,
                        seq,
                        digest,
                        batch: batch.clone(),
                    },
                    &half,
                );
                let other = self.propose_via_slots(sim, view, seq, alt_digest, &alt, &other);
                self.send_msg(
                    sim,
                    Message::PrePrepare {
                        view,
                        seq,
                        digest: alt_digest,
                        batch: alt,
                    },
                    &other,
                );
                // The equivocator records its own (first) version.
                self.accept_pre_prepare(sim, view, seq, digest, batch);
                continue;
            }

            let peers: Vec<u32> = {
                let inner = self.inner.borrow();
                (0..inner.cfg.n as u32).filter(|&r| r != inner.id).collect()
            };
            // Fast path: deposit the proposal one-sided into every granted
            // follower slot; any peer without a usable grant gets the
            // message-path PRE-PREPARE instead.
            let uncovered = self.propose_via_slots(sim, view, seq, digest, &batch, &peers);
            self.send_msg(
                sim,
                Message::PrePrepare {
                    view,
                    seq,
                    digest,
                    batch: batch.clone(),
                },
                &uncovered,
            );
            // The primary's pre-prepare stands in for its prepare.
            self.accept_pre_prepare(sim, view, seq, digest, batch);
        }
    }

    // ------------------------------------------------------------------
    // One-sided fast path
    // ------------------------------------------------------------------

    /// Lazily runs the initial (view-0) slot grant: construction has no
    /// simulator handle, so the grant rides the first event a follower
    /// processes. Idempotent; no-op unless the fast path is configured.
    fn maybe_arm_fast_path(&self, sim: &mut Simulator) {
        let view = {
            let mut inner = self.inner.borrow_mut();
            if !inner.cfg.fast_path
                || inner.fast_path_armed
                || inner.byzantine == ByzantineMode::Crash
            {
                return;
            }
            inner.fast_path_armed = true;
            inner.view
        };
        self.grant_slot_region(sim, view);
    }

    /// Registers (if needed) this follower's pre-prepare slot region and
    /// grants its WRITE rkey to the leader of `view`. The region covers
    /// one full agreement window — `2 · checkpoint_interval` slots of
    /// [`FAST_PATH_SLOT_SIZE`] bytes, indexed by `seq % slots` — so no two
    /// in-window instances ever share a slot.
    fn grant_slot_region(&self, sim: &mut Simulator, view: View) {
        let (transport, leader, slots) = {
            let inner = self.inner.borrow();
            if !inner.cfg.fast_path || inner.byzantine == ByzantineMode::Crash {
                return;
            }
            let leader = inner.cfg.primary(view);
            if leader == inner.id {
                return; // the leader proposes into peers, not itself
            }
            (
                inner.transport.clone(),
                leader,
                2 * inner.cfg.checkpoint_interval,
            )
        };
        if self.inner.borrow().slot_region.is_none() {
            let region =
                transport.register_write_region(sim, (slots * FAST_PATH_SLOT_SIZE) as usize);
            self.inner.borrow_mut().slot_region = region;
        }
        let msg = {
            let mut inner = self.inner.borrow_mut();
            let Some(region) = inner.slot_region else {
                return; // no one-sided write path on this transport
            };
            inner.slot_granted_to = Some(view);
            inner.bump("fast_path_grants_sent", 1);
            Message::SlotGrant {
                view,
                replica: inner.id,
                rkey: region.rkey,
                slot_size: FAST_PATH_SLOT_SIZE,
                slots,
            }
        };
        self.send_msg(sim, msg, &[leader]);
    }

    /// Revokes the granted leader's fast-path WRITE permission by
    /// invalidating the slot region — the MR re-registration fence. From
    /// this point any in-flight WRITE from a deposed or equivocating
    /// leader is denied in this follower's RNIC (`fast_path_write_denied`),
    /// never filtered in software. A fresh region is registered and
    /// granted when the next view installs.
    fn revoke_slot_region(&self) {
        let (region, transport) = {
            let mut inner = self.inner.borrow_mut();
            inner.slot_granted_to = None;
            (inner.slot_region.take(), inner.transport.clone())
        };
        if let Some(region) = region {
            transport.release_write_region(&region);
            self.inner.borrow_mut().bump("fast_path_revocations", 1);
        }
    }

    // ------------------------------------------------------------------
    // Agreement-free read leases
    // ------------------------------------------------------------------

    /// Lazily runs the initial lease registration: construction has no
    /// simulator handle, so the lease rides the first event this replica
    /// processes. Idempotent; no-op unless `cfg.read_leases` is set.
    fn maybe_arm_read_lease(&self, sim: &mut Simulator) {
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.cfg.read_leases
                || inner.lease_armed
                || inner.byzantine == ByzantineMode::Crash
            {
                return;
            }
            inner.lease_armed = true;
        }
        self.register_read_lease(sim);
    }

    /// Registers the service's applied-state region image as a one-sided
    /// READ MR and remembers its offer as the current read lease. A
    /// [`ByzantineMode::StaleLeaseOffer`] replica additionally registers
    /// and immediately invalidates a decoy region whose dead rkey it will
    /// advertise to clients.
    fn register_read_lease(&self, sim: &mut Simulator) {
        let (transport, image, epoch, stale_mode) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.cfg.read_leases || inner.byzantine == ByzantineMode::Crash {
                return;
            }
            // Cell writes staged against a previous lease are already
            // folded into the fresh image; drop them.
            let _ = inner.service.drain_region_writes();
            let Some(image) = inner.service.read_region_image() else {
                return; // service exposes no read region
            };
            (
                inner.transport.clone(),
                image,
                inner.recovery_epoch,
                inner.byzantine == ByzantineMode::StaleLeaseOffer,
            )
        };
        let stale = if stale_mode {
            transport.register_state_region(sim, &image).map(|mut o| {
                o.epoch = epoch;
                transport.release_state_region(&o);
                o
            })
        } else {
            None
        };
        let offer = transport.register_state_region(sim, &image);
        let mut inner = self.inner.borrow_mut();
        if stale.is_some() {
            inner.stale_lease = stale;
        }
        if let Some(mut offer) = offer {
            offer.epoch = epoch;
            inner.read_lease = Some(offer);
            inner.bump("lease_registrations", 1);
        }
    }

    /// Revokes the current read lease by invalidating its MR — the same
    /// re-registration fence the checkpoint stores use. From this point
    /// every one-sided READ of the old rkey is denied in this replica's
    /// RNIC (`stale_rkey_denied`); clients fall back to the message path
    /// and re-query for a fresh lease.
    fn revoke_read_lease(&self) {
        let (lease, transport) = {
            let mut inner = self.inner.borrow_mut();
            (inner.read_lease.take(), inner.transport.clone())
        };
        if let Some(lease) = lease {
            transport.release_state_region(&lease);
            self.inner.borrow_mut().bump("lease_revocations", 1);
        }
    }

    /// Revocation plus fresh registration, used where the exposed state
    /// jumps wholesale: view installation, recovery-epoch rolls, state
    /// transfer. The fresh image snapshots the service after the jump, so
    /// no staged cell writes are lost.
    fn roll_read_lease(&self, sim: &mut Simulator) {
        if !self.inner.borrow().lease_armed {
            return;
        }
        self.revoke_read_lease();
        self.register_read_lease(sim);
    }

    /// A client's lease query: answer with the current lease's rkey (or
    /// the revoked decoy, for a [`ByzantineMode::StaleLeaseOffer`] liar;
    /// or rkey 0 when no lease exists).
    fn handle_lease_query(&self, sim: &mut Simulator, client: ClientId) {
        let msg = {
            let inner = self.inner.borrow_mut();
            if inner.byzantine == ByzantineMode::Crash {
                return;
            }
            inner.bump("lease_queries", 1);
            let advertised = match (inner.byzantine, inner.stale_lease) {
                (ByzantineMode::StaleLeaseOffer, Some(stale)) => Some(stale),
                _ => inner.read_lease,
            };
            let (rkey, len, epoch) = advertised.map(|o| (o.rkey, o.len, o.epoch)).unwrap_or((
                0,
                0,
                inner.recovery_epoch,
            ));
            if rkey != 0 {
                inner.bump("lease_grants", 1);
            }
            Message::LeaseGrant {
                replica: inner.id,
                rkey,
                len,
                epoch,
            }
        };
        self.send_msg(sim, msg, &[client]);
    }

    /// Publishes the cells the just-executed batch dirtied into the leased
    /// region, two-phase: the torn (odd) stamp lands immediately, the
    /// committed cell one [`LEASE_TORN_WINDOW`] later. The commit event is
    /// guarded on the lease being unchanged — a roll in between registers
    /// a fresh image that already contains the committed cell.
    fn publish_region_writes(&self, sim: &mut Simulator) {
        let (writes, lease, transport, forge) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.cfg.read_leases {
                return;
            }
            let writes = inner.service.drain_region_writes();
            if writes.is_empty() {
                return;
            }
            (
                writes,
                inner.read_lease,
                inner.transport.clone(),
                inner.byzantine == ByzantineMode::ForgedLeaseCells,
            )
        };
        let Some(lease) = lease else {
            return; // no one-sided path; the image re-registers on the next roll
        };
        for w in writes {
            let RegionWrite {
                offset,
                begin,
                mut commit,
            } = w;
            if forge && commit.len() > 72 {
                // The forger serves (and therefore knows) the KVLEASE1
                // cell layout: stamp copies in the first and last 8 bytes,
                // value bytes from offset 64. Inflating the stamps keeps
                // the cell decoding as perfectly committed while claiming
                // a state far in the future; the scribbled value bytes
                // fabricate its content.
                let stamp = u64::from_le_bytes(commit[0..8].try_into().expect("8 bytes"));
                let forged = (stamp + FORGE_STAMP_BOOST).to_le_bytes();
                let end = commit.len() - 8;
                commit[0..8].copy_from_slice(&forged);
                commit[end..].copy_from_slice(&forged);
                for b in &mut commit[64..72] {
                    *b ^= 0xA5;
                }
                self.inner.borrow_mut().bump("lease_cells_forged", 1);
            }
            if !transport.write_state_region(&lease, offset, &begin) {
                return; // lease revoked mid-batch; fresh image comes with the next one
            }
            self.inner.borrow_mut().bump("lease_cell_begins", 1);
            let replica = self.clone();
            let rkey = lease.rkey;
            sim.schedule_in(
                LEASE_TORN_WINDOW,
                Box::new(move |_sim| {
                    let (lease, transport) = {
                        let inner = replica.inner.borrow();
                        (inner.read_lease, inner.transport.clone())
                    };
                    if let Some(l) = lease {
                        if l.rkey == rkey && transport.write_state_region(&l, offset, &commit) {
                            replica.inner.borrow_mut().bump("lease_cell_commits", 1);
                        }
                    }
                }),
            );
        }
    }

    /// A follower's WRITE grant arriving at the leader it names. Grants
    /// for views this replica will lead are retained even slightly ahead
    /// of its own view installation (the follower may install first).
    fn handle_slot_grant(
        &self,
        view: View,
        replica: ReplicaId,
        rkey: u32,
        slot_size: u64,
        slots: u64,
    ) {
        let mut inner = self.inner.borrow_mut();
        if !inner.cfg.fast_path
            || replica >= inner.cfg.n as u32
            || replica == inner.id
            || inner.cfg.primary(view) != inner.id
            || view < inner.view
            || slots == 0
            || slot_size == 0
        {
            return;
        }
        inner.slot_grants.insert(
            replica,
            SlotGrantInfo {
                view,
                rkey,
                slot_size,
                slots,
            },
        );
        inner.bump("fast_path_grants_received", 1);
    }

    /// WRITEs the pre-prepare one-sided into each granted peer slot and
    /// returns the peers still needing a message-path PRE-PREPARE: fast
    /// path off, no current-view grant, batch too large for the slot, or
    /// no one-sided write path to that peer.
    fn propose_via_slots(
        &self,
        sim: &mut Simulator,
        view: View,
        seq: SeqNum,
        digest: Digest,
        batch: &[Request],
        peers: &[u32],
    ) -> Vec<u32> {
        let (transport, grants) = {
            let inner = self.inner.borrow();
            if !inner.cfg.fast_path {
                return peers.to_vec();
            }
            (inner.transport.clone(), inner.slot_grants.clone())
        };
        let msg = Message::PrePrepare {
            view,
            seq,
            digest,
            batch: batch.to_vec(),
        };
        // The slot record is the *unsigned* encoded PRE-PREPARE: the RNIC
        // WRITE permission replaces the MAC (only the granted leader can
        // reach the region), and the digest still binds the batch.
        let bytes = msg.encode();
        let mut uncovered = Vec::new();
        let mut written = 0u64;
        for &peer in peers {
            let covered = grants.get(&peer).copied().is_some_and(|g| {
                if g.view != view || g.slots == 0 || bytes.len() as u64 > g.slot_size {
                    return false;
                }
                let slot = seq % g.slots;
                let Ok(imm) = u32::try_from(slot) else {
                    return false;
                };
                let replica = self.clone();
                let fallback = msg.clone();
                transport.write_slot(
                    sim,
                    peer,
                    g.rkey,
                    slot * g.slot_size,
                    &bytes,
                    imm,
                    Box::new(move |sim, ok| {
                        if !ok {
                            replica.fast_path_write_failed(sim, peer, fallback);
                        }
                    }),
                )
            });
            if covered {
                written += 1;
            } else {
                uncovered.push(peer);
            }
        }
        let mut inner = self.inner.borrow_mut();
        if written > 0 {
            inner.stats.fast_path_writes += written;
            inner.bump("fast_path_writes", written);
        }
        if !uncovered.is_empty() {
            inner.stats.fast_path_fallbacks += uncovered.len() as u64;
            inner.bump("fast_path_fallbacks", uncovered.len() as u64);
        }
        uncovered
    }

    /// A posted slot WRITE completed with an error: the peer's RNIC denied
    /// it (a revocation race — the follower started a view change after
    /// the WRITE was posted) or the channel broke. Drop the stale grant
    /// and, if the proposal is still current, re-send it over the message
    /// path so a revocation race never loses a proposal.
    fn fast_path_write_failed(&self, sim: &mut Simulator, peer: u32, msg: Message) {
        let resend = {
            let mut inner = self.inner.borrow_mut();
            inner.slot_grants.remove(&peer);
            let current = match &msg {
                Message::PrePrepare { view, .. } => {
                    *view == inner.view
                        && !inner.in_view_change
                        && inner.cfg.primary(*view) == inner.id
                }
                _ => false,
            };
            if current {
                inner.stats.fast_path_fallbacks += 1;
                inner.bump("fast_path_fallbacks", 1);
            }
            current
        };
        if resend {
            self.send_msg(sim, msg, &[peer]);
        }
    }

    /// The doorbell handler: a one-sided WRITE landed in this replica's
    /// slot region. Pull the record out of slot `slot`, decode it as a
    /// PRE-PREPARE and funnel it into the ordinary acceptance path. There
    /// is no MAC to verify — the RNIC WRITE permission authenticated the
    /// proposer — but everything else (digest binding the batch, view,
    /// watermarks) is checked exactly as on the message path.
    fn on_slot_doorbell(&self, sim: &mut Simulator, from: u32, slot: u32, len: usize) {
        let read = {
            let inner = self.inner.borrow();
            if !inner.cfg.fast_path || inner.byzantine == ByzantineMode::Crash {
                return;
            }
            let Some(region) = inner.slot_region else {
                return;
            };
            let slots = 2 * inner.cfg.checkpoint_interval;
            if u64::from(slot) >= slots || len as u64 > FAST_PATH_SLOT_SIZE {
                return;
            }
            (inner.transport.clone(), region)
        };
        let (transport, region) = read;
        let Some(bytes) =
            transport.read_write_region(&region, u64::from(slot) * FAST_PATH_SLOT_SIZE, len)
        else {
            return;
        };
        let Ok(Message::PrePrepare {
            view,
            seq,
            digest,
            batch,
        }) = Message::decode(&bytes)
        else {
            self.inner.borrow_mut().stats.malformed_dropped += 1;
            return;
        };
        let accept = {
            let mut inner = self.inner.borrow_mut();
            let slots = 2 * inner.cfg.checkpoint_interval;
            // The depositor must be the leader the slot was granted to,
            // and the record must sit in the slot its sequence number
            // owns (a WRITE cannot relocate an instance).
            if inner.cfg.primary(view) != from
                || seq % slots != u64::from(slot)
                || view != inner.view
                || inner.in_view_change
                || !inner.in_watermarks(seq)
            {
                false
            } else if !inner.slot_accept(seq) {
                inner.bump("fast_path_slot_conflicts", 1);
                false
            } else {
                inner.stats.fast_path_deliveries += 1;
                inner.bump("fast_path_deliveries", 1);
                true
            }
        };
        if accept {
            self.handle_pre_prepare(sim, view, seq, digest, batch);
        }
    }

    /// A deposed [`ByzantineMode::LateSlotWriter`] fires its retained —
    /// and by now revoked — slot grants the moment it learns of the new
    /// view. The followers invalidated their regions when they *voted*,
    /// strictly before any NewView certificate could form, so every one
    /// of these WRITEs is denied in the target RNIC.
    fn maybe_fire_stale_slot_writes(&self, sim: &mut Simulator, new_view: View) {
        let (transport, stale, seq) = {
            let inner = self.inner.borrow();
            if inner.byzantine != ByzantineMode::LateSlotWriter || !inner.cfg.fast_path {
                return;
            }
            let mut stale: Vec<(u32, SlotGrantInfo)> = inner
                .slot_grants
                .iter()
                .filter(|(_, g)| g.view < new_view)
                .map(|(&p, &g)| (p, g))
                .collect();
            // HashMap order is not deterministic; the simulation is.
            stale.sort_unstable_by_key(|(p, _)| *p);
            (inner.transport.clone(), stale, inner.low_mark + 1)
        };
        if stale.is_empty() {
            return;
        }
        let batch = vec![Request {
            client: u32::MAX,
            timestamp: 1,
            payload: b"late".to_vec(),
        }];
        let digest = batch_digest(&batch);
        for (peer, g) in stale {
            let msg = Message::PrePrepare {
                view: g.view,
                seq,
                digest,
                batch: batch.clone(),
            };
            let slot = seq % g.slots.max(1);
            let Ok(imm) = u32::try_from(slot) else {
                continue;
            };
            transport.write_slot(
                sim,
                peer,
                g.rkey,
                slot * g.slot_size,
                &msg.encode(),
                imm,
                Box::new(|_, _| {}),
            );
        }
        self.inner.borrow_mut().slot_grants.clear();
    }

    // ------------------------------------------------------------------
    // Agreement
    // ------------------------------------------------------------------

    fn handle_pre_prepare(
        &self,
        sim: &mut Simulator,
        view: View,
        seq: SeqNum,
        digest: Digest,
        batch: Vec<Request>,
    ) {
        let accepted = {
            let mut inner = self.inner.borrow_mut();
            if view != inner.view || inner.in_view_change {
                return;
            }
            if inner.cfg.primary(view) == inner.id {
                return; // primaries do not take pre-prepares
            }
            if !inner.in_watermarks(seq) {
                return;
            }
            // Verify the digest binds the batch.
            let core = inner.affinity.seq_core(seq);
            let cost = inner.cfg.crypto.digest_cost(batch_bytes(&batch));
            inner.charge(sim, core, cost);
            if batch_digest(&batch) != digest {
                false
            } else {
                let me = inner.id;
                let lane = inner.affinity.lane_of(seq);
                if inner.pipelines[lane].accept_pre_prepare(view, seq, digest, batch, me) {
                    inner.stats.prepares_sent += 1;
                    inner.bump("prepares_sent", 1);
                    inner.note_pre_prepare(sim.now(), seq);
                    true
                } else {
                    false
                }
            }
        };
        if !accepted {
            return;
        }
        let me = self.id();
        self.broadcast_to_replicas(
            sim,
            Message::Prepare {
                view,
                seq,
                digest,
                replica: me,
            },
        );
        self.maybe_prepared(sim, seq);
    }

    /// The primary's local acceptance of its own proposal.
    fn accept_pre_prepare(
        &self,
        sim: &mut Simulator,
        view: View,
        seq: SeqNum,
        digest: Digest,
        batch: Vec<Request>,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            let lane = inner.affinity.lane_of(seq);
            inner.pipelines[lane].install(
                seq,
                Instance {
                    view,
                    digest: Some(digest),
                    batch: Some(batch),
                    pre_prepared: true,
                    ..Instance::default()
                },
            );
            inner.note_pre_prepare(sim.now(), seq);
        }
        self.maybe_prepared(sim, seq);
    }

    fn handle_prepare(
        &self,
        sim: &mut Simulator,
        view: View,
        seq: SeqNum,
        digest: Digest,
        replica: ReplicaId,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            if view != inner.view || inner.in_view_change || !inner.in_watermarks(seq) {
                return;
            }
            let lane = inner.affinity.lane_of(seq);
            if !inner.pipelines[lane].add_prepare(view, seq, digest, replica) {
                return; // vote for a different digest
            }
        }
        self.maybe_prepared(sim, seq);
    }

    fn maybe_prepared(&self, sim: &mut Simulator, seq: SeqNum) {
        let commit = {
            let mut inner = self.inner.borrow_mut();
            // The primary's pre-prepare plus 2f prepares (for the primary
            // itself, 2f prepares from backups).
            let quorum = inner.cfg.prepare_quorum();
            let me = inner.id;
            let view = inner.view;
            let lane = inner.affinity.lane_of(seq);
            let now = sim.now();
            let Some((digest, since_pp)) = inner.pipelines[lane].try_prepare(seq, quorum, me, now)
            else {
                return;
            };
            inner.stats.commits_sent += 1;
            inner.bump("commits_sent", 1);
            if let Some(d) = since_pp {
                inner.observe("phase.preprepare_to_prepared", d);
            }
            Some((view, digest))
        };
        let Some((view, digest)) = commit else { return };
        let me = self.id();
        self.broadcast_to_replicas(
            sim,
            Message::Commit {
                view,
                seq,
                digest,
                replica: me,
            },
        );
        self.maybe_committed(sim, seq);
    }

    fn handle_commit(
        &self,
        sim: &mut Simulator,
        view: View,
        seq: SeqNum,
        digest: Digest,
        replica: ReplicaId,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            if view != inner.view || inner.in_view_change || !inner.in_watermarks(seq) {
                return;
            }
            let lane = inner.affinity.lane_of(seq);
            if !inner.pipelines[lane].add_commit(seq, digest, replica) {
                return;
            }
        }
        self.maybe_committed(sim, seq);
    }

    fn maybe_committed(&self, sim: &mut Simulator, seq: SeqNum) {
        {
            let mut inner = self.inner.borrow_mut();
            let quorum = inner.cfg.commit_quorum();
            let lane = inner.affinity.lane_of(seq);
            let Some(since_prep) = inner.pipelines[lane].try_commit(seq, quorum, sim.now()) else {
                return;
            };
            if let Some(d) = since_prep {
                inner.observe("phase.prepared_to_committed", d);
            }
            inner.bump_lane_committed(lane);
        }
        self.try_execute(sim);
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    fn try_execute(&self, sim: &mut Simulator) {
        loop {
            let (seq, batch) = {
                let mut inner = self.inner.borrow_mut();
                // The executor is the only cross-pipeline synchronization
                // point: it releases committed batches strictly in sequence
                // order, whatever the commit order across pipelines was.
                let popped = {
                    let ReplicaInner {
                        pipelines,
                        executor,
                        ..
                    } = &mut *inner;
                    executor.pop_ready(pipelines)
                };
                let Some(exec) = popped else {
                    drop(inner);
                    // A checkpoint certified while this replica was behind
                    // may now be reachable.
                    self.maybe_deferred_stable(sim);
                    return;
                };
                let since_commit = exec
                    .committed_at
                    .map(|t| sim.now().as_nanos().saturating_sub(t.as_nanos()));
                inner.stats.executed_batches += 1;
                inner.bump("batches_executed", 1);
                if let Some(d) = since_commit {
                    inner.observe("phase.committed_to_executed", d);
                }
                (exec.seq, exec.batch)
            };
            let mut replies = Vec::new();
            {
                let mut inner = self.inner.borrow_mut();
                for req in &batch {
                    // Deduplicate across re-proposals (view changes).
                    let stale = inner
                        .client_state
                        .get(&req.client)
                        .is_some_and(|(ts, _)| *ts >= req.timestamp);
                    if stale {
                        continue;
                    }
                    let cost = inner.service.op_cost(req);
                    inner.charge(sim, CoreId(0), cost);
                    let result = inner.service.apply(req);
                    inner
                        .client_state
                        .insert(req.client, (req.timestamp, result.clone()));
                    inner.proposed.remove(&(req.client, req.timestamp));
                    inner.stats.executed_requests += 1;
                    inner.bump("requests_executed", 1);
                    replies.push((req.client, req.timestamp, result));
                }
            }
            for (client, ts, result) in replies {
                self.send_reply(sim, client, ts, result);
            }
            // Agreement-free reads: publish the cells this batch dirtied
            // into the leased region.
            self.publish_region_writes(sim);
            // Durability: log the executed batch before it is reflected in
            // any checkpoint, so a crash between checkpoints replays it.
            {
                let mut inner = self.inner.borrow_mut();
                if inner.durable.is_some() {
                    let digest = inner
                        .executor
                        .executed_log
                        .last()
                        .map_or(Digest::ZERO, |&(_, d)| d);
                    let frame = WalFrame {
                        seq,
                        digest,
                        requests: batch.clone(),
                    };
                    let now = sim.now();
                    let ReplicaInner { durable, .. } = &mut *inner;
                    durable
                        .as_mut()
                        .expect("checked above")
                        .append_batch(now, &frame);
                }
            }
            // Checkpointing.
            let is_checkpoint = {
                let inner = self.inner.borrow();
                seq.is_multiple_of(inner.cfg.checkpoint_interval)
            };
            if is_checkpoint {
                self.make_checkpoint(sim, seq);
            }
            // New window space may allow further proposals.
            self.try_propose(sim);
        }
    }

    fn send_reply(&self, sim: &mut Simulator, client: ClientId, timestamp: u64, result: Vec<u8>) {
        let (view, me) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.replies_sent += 1;
            (inner.view, inner.id)
        };
        self.send_msg(
            sim,
            Message::Reply {
                view,
                client,
                timestamp,
                replica: me,
                result,
            },
            &[client],
        );
    }

    // ------------------------------------------------------------------
    // Checkpoints
    // ------------------------------------------------------------------

    /// Seals the executed state at checkpoint `seq` into a
    /// [`CheckpointStore`], registers it for one-sided reads (where the
    /// transport supports it), votes for its root and broadcasts the vote
    /// with the read offer piggybacked.
    fn make_checkpoint(&self, sim: &mut Simulator, seq: SeqNum) {
        let (reg_bytes, transport) = {
            let mut inner = self.inner.borrow_mut();
            let payload = inner.build_checkpoint_payload(seq).encode();
            let cost = inner.cfg.crypto.digest_cost(payload.len().max(64));
            inner.charge(sim, CoreId(0), cost);
            let store = CheckpointStore::build(seq, payload);
            inner.own_checkpoints.insert(seq, store.root());
            // What actually backs the read offer depends on honesty: a
            // Byzantine responder registers corrupted or stale bytes while
            // still voting the honest root.
            let reg_bytes: Vec<u8> = match inner.byzantine {
                ByzantineMode::BogusStateChunks => corrupt_chunks(store.bytes()),
                ByzantineMode::StaleCheckpoint => {
                    let mut stale = inner
                        .stores
                        .last_key_value()
                        .map(|(_, (prev, _))| prev.bytes().to_vec())
                        .unwrap_or_else(|| corrupt_chunks(store.bytes()));
                    // Pad to the honest length so remote reads stay within
                    // the region (the *content* is what's wrong).
                    stale.resize(store.bytes().len(), 0);
                    stale
                }
                _ => store.bytes().to_vec(),
            };
            inner.stores.insert(seq, (store, StateOffer::default()));
            (reg_bytes, inner.transport.clone())
        };
        let mut offer = transport
            .register_state_region(sim, &reg_bytes)
            .unwrap_or_default();
        let (msg, root, released) = {
            let mut inner = self.inner.borrow_mut();
            // Tag the freshly registered region with the current recovery
            // epoch; fetchers echo the tag and responders reject mismatches.
            offer.epoch = inner.recovery_epoch;
            let root = {
                let entry = inner.stores.get_mut(&seq).expect("just inserted");
                entry.1 = offer;
                entry.0.root()
            };
            let me = inner.id;
            let advertised = inner.advertised_offer(offer);
            inner
                .checkpoint_votes
                .entry(seq)
                .or_default()
                .entry(root)
                .or_default()
                .insert(me, advertised);
            // Retain the latest two stores; release everything older so the
            // registered regions do not accumulate.
            let mut released = Vec::new();
            while inner.stores.len() > 2 {
                let (_, (_, old_offer)) = inner.stores.pop_first().expect("len > 2");
                if old_offer.readable() {
                    released.push(old_offer);
                }
            }
            (
                Message::Checkpoint {
                    seq,
                    state_digest: root,
                    replica: me,
                    store_rkey: advertised.rkey,
                    store_len: advertised.len,
                    store_epoch: advertised.epoch,
                },
                root,
                released,
            )
        };
        for old in released {
            transport.release_state_region(&old);
        }
        self.broadcast_to_replicas(sim, msg);
        self.maybe_stable_checkpoint(sim, seq, root);
    }

    fn handle_checkpoint(
        &self,
        sim: &mut Simulator,
        seq: SeqNum,
        digest: Digest,
        replica: ReplicaId,
        offer: StateOffer,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            if seq <= inner.low_mark || replica >= inner.cfg.n as u32 {
                return;
            }
            inner
                .checkpoint_votes
                .entry(seq)
                .or_default()
                .entry(digest)
                .or_default()
                .insert(replica, offer);
            // A re-broadcast vote after an epoch roll carries the
            // responder's *fresh* offer; refresh it into any in-flight
            // transfer for the same certificate so the fetcher does not
            // keep probing an rkey the roll just revoked.
            if let Some(t) = inner.transfer.as_mut() {
                if t.target == seq && t.root == digest {
                    if let Some(p) = t.peers.iter_mut().find(|(id, _)| *id == replica) {
                        p.1 = offer;
                    }
                }
            }
        }
        self.maybe_stable_checkpoint(sim, seq, digest);
    }

    fn maybe_stable_checkpoint(&self, sim: &mut Simulator, seq: SeqNum, digest: Digest) {
        let mut inner = self.inner.borrow_mut();
        if seq <= inner.low_mark {
            return;
        }
        let quorum = inner.cfg.commit_quorum();
        let votes = inner
            .checkpoint_votes
            .get(&seq)
            .and_then(|m| m.get(&digest))
            .map_or(0, HashMap::len);
        if votes < quorum {
            return;
        }
        if inner.executor.last_executed < seq {
            // Certified, but this replica has not executed up to it: defer
            // stabilization and give ordinary catch-up one grace period
            // before falling back to full state transfer.
            let arm = inner.pending_stable.is_none_or(|(s, _)| s < seq);
            if arm {
                inner.pending_stable = Some((seq, digest));
                drop(inner);
                self.arm_transfer_grace(sim, seq);
            }
            return;
        }
        // Stable: advance the low watermark and truncate every pipeline.
        inner.low_mark = seq;
        if inner.pending_stable.is_some_and(|(s, _)| s <= seq) {
            inner.pending_stable = None;
        }
        inner.stats.stable_checkpoints += 1;
        let freed: u64 = inner
            .pipelines
            .iter_mut()
            .map(|pl| pl.truncate_through(seq))
            .sum();
        inner.checkpoint_votes.retain(|&s, _| s > seq);
        inner.catch_up_votes.retain(|&s, _| s > seq);
        inner.own_checkpoints.retain(|&s, _| s >= seq);
        // Fast-path slots whose occupants fell below the new low watermark
        // are stably checkpointed and may be recycled; occupants still in
        // the window keep their slot reserved (see `slot_accept`).
        inner.slot_seqs.retain(|_, s| *s > seq);
        // Executed requests can no longer feed phase latencies; drop their
        // arrival stamps so the map stays bounded by the window.
        {
            let ReplicaInner {
                arrivals,
                client_state,
                ..
            } = &mut *inner;
            arrivals.retain(|(c, ts), _| client_state.get(c).is_none_or(|(t, _)| *t < *ts));
        }
        inner.bump("checkpoints_stable", 1);
        inner.bump("checkpoint_gc_freed", freed);
        inner.metrics.trace(
            sim.now(),
            "reptor",
            format!(
                "{}checkpoint_stable seq={seq} freed={freed}",
                inner.metrics_prefix
            ),
        );
        // Durability: every `snapshot_every`-th stable checkpoint is
        // persisted from its sealed store (the payload as it was at `seq`,
        // not the service's current — possibly later — state) and the WAL
        // compacts down to frames past it.
        let due = inner
            .durable
            .as_mut()
            .is_some_and(DurableStore::record_stable);
        if due {
            let payload = inner.stores.get(&seq).map(|(s, _)| s.bytes().to_vec());
            if let Some(payload) = payload {
                let now = sim.now();
                let ReplicaInner { durable, .. } = &mut *inner;
                durable
                    .as_mut()
                    .expect("checked above")
                    .write_snapshot(now, seq, &payload);
            }
        }
    }

    // ------------------------------------------------------------------
    // State transfer (below-checkpoint recovery and cold rejoin)
    // ------------------------------------------------------------------

    /// Stabilizes a deferred checkpoint once execution has reached it.
    fn maybe_deferred_stable(&self, sim: &mut Simulator) {
        let ready = {
            let inner = self.inner.borrow();
            inner
                .pending_stable
                .filter(|&(s, _)| inner.executor.last_executed >= s)
        };
        if let Some((seq, digest)) = ready {
            self.inner.borrow_mut().pending_stable = None;
            self.maybe_stable_checkpoint(sim, seq, digest);
        }
    }

    /// One grace period between "certified checkpoint this replica has not
    /// reached" and full state transfer: per-instance catch-up is cheaper
    /// when the gap is small, so it gets the first try.
    fn arm_transfer_grace(&self, sim: &mut Simulator, seq: SeqNum) {
        let timeout = self.inner.borrow().cfg.view_change_timeout;
        let replica = self.clone();
        sim.schedule_in(
            timeout,
            Box::new(move |sim| {
                let go = {
                    let inner = replica.inner.borrow();
                    inner.byzantine != ByzantineMode::Crash
                        && inner.transfer.is_none()
                        && inner.pending_stable.is_some_and(|(s, _)| s == seq)
                        && inner.executor.last_executed < seq
                };
                if go {
                    replica.maybe_start_transfer(sim);
                }
            }),
        );
    }

    /// Starts a transfer towards the highest checkpoint attested by
    /// `f + 1` matching votes beyond this replica's execution horizon —
    /// enough to guarantee at least one honest replica vouches for that
    /// exact state (stabilization still demands `2f + 1`).
    fn maybe_start_transfer(&self, sim: &mut Simulator) {
        let plan = {
            let inner = self.inner.borrow();
            if inner.transfer.is_some() {
                return;
            }
            let f = inner.cfg.f();
            let me = inner.id;
            let le = inner.executor.last_executed;
            inner
                .checkpoint_votes
                .iter()
                .rev()
                .filter(|&(&s, _)| s > le)
                .find_map(|(&s, by_digest)| {
                    // Deterministic pick: only one digest can gather f+1
                    // votes honestly, but sort anyway so a hostile vote set
                    // cannot make replicas diverge on iteration order.
                    let mut certified: Vec<_> = by_digest
                        .iter()
                        .filter(|(_, voters)| voters.len() > f)
                        .collect();
                    certified.sort_unstable_by_key(|(d, _)| *d);
                    certified.into_iter().find_map(|(&d, voters)| {
                        let mut peers: Vec<(ReplicaId, StateOffer)> = voters
                            .iter()
                            .filter(|&(&r, _)| r != me)
                            .map(|(&r, &o)| (r, o))
                            .collect();
                        peers.sort_unstable_by_key(|&(r, _)| r);
                        (!peers.is_empty()).then_some((s, d, peers))
                    })
                })
        };
        if let Some((seq, root, peers)) = plan {
            self.start_state_transfer(sim, seq, root, peers);
        }
    }

    fn start_state_transfer(
        &self,
        sim: &mut Simulator,
        target: SeqNum,
        root: Digest,
        peers: Vec<(ReplicaId, StateOffer)>,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.transfer.is_some() || inner.executor.last_executed >= target {
                return;
            }
            let me = inner.id;
            let mut transfer = Transfer::new(target, root, peers, me);
            // Durable delta fetch: offer the locally recovered state as a
            // chunk candidate. Once the manifest arrives, every chunk it
            // digest-certifies that we already hold is satisfied without
            // touching the network.
            if inner.durable.is_some() && inner.executor.last_executed > 0 {
                let local = inner
                    .build_checkpoint_payload(inner.executor.last_executed)
                    .encode();
                transfer.set_local_candidate(local);
            }
            inner.transfer = Some(transfer);
            inner.stats.state_transfers_started += 1;
            inner.bump("state_transfer_started", 1);
            inner.metrics.trace(
                sim.now(),
                "reptor",
                format!(
                    "{}state_transfer_start target={target}",
                    inner.metrics_prefix
                ),
            );
        }
        self.arm_transfer_timer(sim);
        self.drive_transfer(sim);
    }

    /// Issues the next fetch step: the manifest first (always over the
    /// message path — it is what everything else is verified against),
    /// then chunks in order: one-sided RDMA READs where the responder
    /// offered a registered region, `StateRequest` messages otherwise.
    /// One operation is outstanding at a time; the stall timer covers
    /// losses and silent responders.
    fn drive_transfer(&self, sim: &mut Simulator) {
        enum Step {
            Manifest(ReplicaId, SeqNum, u64),
            Read(ReplicaId, StateOffer, SeqNum, u32, usize),
            Request(ReplicaId, SeqNum, u32, u64),
            Done,
        }
        let me = self.id();
        let step = {
            let inner = self.inner.borrow();
            let Some(t) = &inner.transfer else { return };
            let (peer, offer) = t.current_peer();
            match &t.manifest {
                None => Step::Manifest(peer, t.target, offer.epoch),
                Some(manifest) => match t.next_missing() {
                    Some(idx) => {
                        let len = manifest.chunk_len(idx);
                        if offer.readable() {
                            Step::Read(peer, offer, t.target, idx, len)
                        } else {
                            Step::Request(peer, t.target, idx, offer.epoch)
                        }
                    }
                    None => Step::Done,
                },
            }
        };
        match step {
            Step::Manifest(peer, seq, epoch) => self.send_msg(
                sim,
                Message::StateRequest {
                    seq,
                    chunk: MANIFEST_CHUNK,
                    replica: me,
                    epoch,
                },
                &[peer],
            ),
            Step::Request(peer, seq, chunk, epoch) => self.send_msg(
                sim,
                Message::StateRequest {
                    seq,
                    chunk,
                    replica: me,
                    epoch,
                },
                &[peer],
            ),
            Step::Read(peer, offer, seq, idx, len) => {
                let transport = self.inner.borrow().transport.clone();
                let replica = self.clone();
                let issued = transport.read_state(
                    sim,
                    peer,
                    offer.rkey,
                    idx as u64 * CHUNK_SIZE as u64,
                    len,
                    Box::new(move |sim, data| replica.on_state_read_done(sim, seq, idx, data)),
                );
                if issued {
                    self.inner.borrow_mut().bump("state_transfer_reads", 1);
                } else {
                    // No live one-sided path to this responder right now
                    // (channel down or re-dialing): use the message path.
                    self.send_msg(
                        sim,
                        Message::StateRequest {
                            seq,
                            chunk: idx,
                            replica: me,
                            epoch: offer.epoch,
                        },
                        &[peer],
                    );
                }
            }
            Step::Done => self.finish_transfer(sim),
        }
    }

    /// Completion of a one-sided chunk READ.
    fn on_state_read_done(
        &self,
        sim: &mut Simulator,
        seq: SeqNum,
        idx: u32,
        data: Option<Vec<u8>>,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.byzantine == ByzantineMode::Crash {
                return;
            }
            let mut accepted_bytes = 0u64;
            let mut retried = false;
            {
                let Some(t) = inner.transfer.as_mut() else {
                    return;
                };
                if t.target != seq {
                    return;
                }
                match &data {
                    Some(bytes) => match t.accept_chunk(idx, bytes) {
                        ChunkVerdict::Accepted => accepted_bytes = bytes.len() as u64,
                        ChunkVerdict::Mismatch => {
                            t.next_peer();
                            retried = true;
                        }
                        ChunkVerdict::Ignored => {}
                    },
                    // Failed READ (stale rkey, flushed queue pair): rotate.
                    None => {
                        t.next_peer();
                        retried = true;
                    }
                }
            }
            if accepted_bytes > 0 {
                inner.bump("state_transfer_chunks", 1);
                inner.bump("state_transfer_bytes", accepted_bytes);
            }
            if retried {
                inner.stats.state_transfer_retries += 1;
                inner.bump("state_transfer_retries", 1);
            }
        }
        self.drive_transfer(sim);
    }

    /// Serves a manifest or chunk of a retained checkpoint store over the
    /// message path (`chunk == MANIFEST_CHUNK` selects the manifest).
    fn handle_state_request(
        &self,
        sim: &mut Simulator,
        seq: SeqNum,
        chunk: u32,
        requester: ReplicaId,
        epoch: u64,
    ) {
        let reply = {
            let mut inner = self.inner.borrow_mut();
            if requester == inner.id || requester >= inner.cfg.n as u32 {
                return;
            }
            // Message-path mirror of the RNIC rkey fence: a request tagged
            // with a stale recovery epoch is refused outright. The fetcher's
            // stall timer rotates it to a peer with a fresh offer.
            if epoch != inner.recovery_epoch {
                inner.stats.stale_epoch_rejected += 1;
                inner.bump("stale_epoch_rejected", 1);
                return;
            }
            // A StaleCheckpoint responder answers with its *oldest*
            // retained store's content under the requested seq; the
            // fetcher's root/digest checks catch the substitution.
            let store = match inner.byzantine {
                ByzantineMode::StaleCheckpoint => inner.stores.values().next().map(|(s, _)| s),
                _ => inner.stores.get(&seq).map(|(s, _)| s),
            };
            let Some(store) = store else { return };
            let data = if chunk == MANIFEST_CHUNK {
                store.manifest().to_vec()
            } else {
                match store.chunk(chunk) {
                    Some(c) => c.to_vec(),
                    None => return,
                }
            };
            let data = if inner.byzantine == ByzantineMode::BogusStateChunks {
                corrupt_chunks(&data)
            } else {
                data
            };
            Message::StateChunk {
                seq,
                chunk,
                data,
                replica: inner.id,
            }
        };
        self.send_msg(sim, reply, &[requester]);
    }

    /// A manifest or chunk arriving over the message path.
    fn handle_state_chunk(
        &self,
        sim: &mut Simulator,
        seq: SeqNum,
        chunk: u32,
        data: Vec<u8>,
        _replica: ReplicaId,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            let mut accepted_bytes = 0u64;
            let mut retried = false;
            let mut local = (0u64, 0u64);
            {
                let Some(t) = inner.transfer.as_mut() else {
                    return;
                };
                if t.target != seq {
                    return;
                }
                if chunk == MANIFEST_CHUNK {
                    if t.manifest.is_none() && !t.install_manifest(&data) {
                        // Stale or forged manifest: route around.
                        t.next_peer();
                        retried = true;
                    } else {
                        local = t.prefill_from_local();
                    }
                } else {
                    match t.accept_chunk(chunk, &data) {
                        ChunkVerdict::Accepted => accepted_bytes = data.len() as u64,
                        ChunkVerdict::Mismatch => {
                            t.next_peer();
                            retried = true;
                        }
                        ChunkVerdict::Ignored => {}
                    }
                }
            }
            if accepted_bytes > 0 {
                inner.bump("state_transfer_chunks", 1);
                inner.bump("state_transfer_bytes", accepted_bytes);
            }
            if local.0 > 0 {
                inner.bump("state_transfer_chunks_local", local.0);
                inner.bump("state_transfer_bytes_local", local.1);
            }
            if retried {
                inner.stats.state_transfer_retries += 1;
                inner.bump("state_transfer_retries", 1);
            }
        }
        self.drive_transfer(sim);
    }

    /// Installs a fully verified transfer: restores the service snapshot,
    /// rebuilds the client session table, fast-forwards the executor past
    /// the checkpoint and resumes normal operation above it.
    fn finish_transfer(&self, sim: &mut Simulator) {
        let (target, payload, bytes) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.transfer.as_ref().is_some_and(Transfer::is_complete) {
                return;
            }
            let t = inner.transfer.take().expect("checked above");
            let bytes = t.assemble().expect("complete transfer assembles");
            let Some(payload) = CheckpointPayload::decode(&bytes) else {
                // Digest-verified bytes that do not decode mean the
                // certifying quorum itself was faulty (> f faults); there
                // is no correct state to install.
                inner.bump("state_transfer_undecodable", 1);
                return;
            };
            (t.target, payload, bytes)
        };
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.service.restore(&payload.service_snapshot) {
                inner.bump("state_transfer_restore_failed", 1);
                return;
            }
            inner.client_state = payload
                .clients
                .iter()
                .map(|(c, ts, reply)| (*c, (*ts, reply.clone())))
                .collect();
            inner.executor.fast_forward(target);
            inner.low_mark = target;
            if inner.next_seq <= target {
                inner.next_seq = target + 1;
            }
            for pl in &mut inner.pipelines {
                pl.truncate_through(target);
            }
            inner.checkpoint_votes.retain(|&s, _| s > target);
            inner.catch_up_votes.retain(|&s, _| s > target);
            inner.own_checkpoints.retain(|&s, _| s >= target);
            inner.slot_seqs.retain(|&_, s| *s > target);
            if inner.pending_stable.is_some_and(|(s, _)| s <= target) {
                inner.pending_stable = None;
            }
            inner.stats.state_transfers_completed += 1;
            inner.bump("state_transfer_completed", 1);
            // The replica is provisioned again: the next crash's rejoin
            // probes must start back at the base backoff period.
            inner.rejoin_attempts = 0;
            // Persist the installed checkpoint: a later cold restart
            // resumes from here instead of re-fetching everything.
            let now = sim.now();
            {
                let ReplicaInner { durable, .. } = &mut *inner;
                if let Some(d) = durable.as_mut() {
                    d.write_snapshot(now, target, &bytes);
                }
            }
            inner.metrics.trace(
                sim.now(),
                "reptor",
                format!(
                    "{}state_transfer_done target={target}",
                    inner.metrics_prefix
                ),
            );
        }
        // The service state just jumped wholesale; any outstanding read
        // lease exposes a pre-transfer image and must roll.
        self.roll_read_lease(sim);
        // Seal and attest the installed state as this replica's own
        // checkpoint (other laggards may fetch from it in turn), then
        // resume per-instance catch-up for everything past it.
        self.make_checkpoint(sim, target);
        self.inner.borrow_mut().last_catch_up_at = 0;
        self.request_catch_up(sim);
        self.try_execute(sim);
    }

    /// Stall detection: while a transfer is active, check every timeout
    /// period that it made progress; if not, rotate to the next attester
    /// and re-drive (covers lost messages, failed READs and silent or
    /// Byzantine responders).
    fn arm_transfer_timer(&self, sim: &mut Simulator) {
        let (timeout, mark) = {
            let inner = self.inner.borrow();
            let Some(t) = &inner.transfer else { return };
            (inner.cfg.view_change_timeout, t.progress())
        };
        let replica = self.clone();
        sim.schedule_in(
            timeout,
            Box::new(move |sim| {
                let stalled = {
                    let mut inner = replica.inner.borrow_mut();
                    if inner.byzantine == ByzantineMode::Crash {
                        return;
                    }
                    let stalled = {
                        let Some(t) = inner.transfer.as_mut() else {
                            return;
                        };
                        if t.progress() == mark {
                            t.next_peer();
                            true
                        } else {
                            false
                        }
                    };
                    if stalled {
                        inner.stats.state_transfer_retries += 1;
                        inner.bump("state_transfer_retries", 1);
                    }
                    stalled
                };
                if stalled {
                    replica.drive_transfer(sim);
                }
                replica.arm_transfer_timer(sim);
            }),
        );
    }

    /// Periodic rejoin probe after a cold restart: keep requesting
    /// catch-up (whose unservable answers carry checkpoint attestations)
    /// and checking for an `f + 1`-attested checkpoint to transfer
    /// towards, until the replica has rejoined or the probe budget runs
    /// out (a lone replica in an idle group has nothing to rejoin to).
    ///
    /// The probe period backs off exponentially with the same shape as the
    /// transport reconnect policy (doubling, capped at `base << 5`): early
    /// probes converge fast when peers are live, late ones stop flooding an
    /// idle or partitioned group.
    fn arm_rejoin_probe(&self, sim: &mut Simulator) {
        const MAX_PROBES: u32 = 32;
        let (attempts, generation, le_at_arm, timeout) = {
            let inner = self.inner.borrow();
            (
                inner.rejoin_attempts,
                inner.rejoin_generation,
                inner.executor.last_executed,
                rejoin_probe_delay(inner.cfg.view_change_timeout, inner.rejoin_attempts),
            )
        };
        if attempts >= MAX_PROBES {
            return;
        }
        let replica = self.clone();
        sim.schedule_in(
            timeout,
            Box::new(move |sim| {
                {
                    let inner = replica.inner.borrow();
                    if inner.byzantine == ByzantineMode::Crash {
                        return;
                    }
                    // A later restart started its own probe chain; this
                    // one is stale — die rather than compound the backoff.
                    if inner.rejoin_generation != generation {
                        return;
                    }
                    // Rejoined: the replica advanced past where it stood
                    // when this probe was armed (by transfer or by live
                    // execution) with no transfer in flight. A durable
                    // recovery restarts *at* `le_at_arm`, so local replay
                    // alone never satisfies this — the replica keeps
                    // probing until peers confirm it is current or the
                    // budget runs out.
                    if inner.executor.last_executed > le_at_arm && inner.transfer.is_none() {
                        return;
                    }
                }
                replica.inner.borrow_mut().rejoin_attempts += 1;
                replica.request_catch_up(sim);
                replica.maybe_start_transfer(sim);
                replica.arm_rejoin_probe(sim);
            }),
        );
    }

    // ------------------------------------------------------------------
    // Catch-up (lagging-replica recovery)
    // ------------------------------------------------------------------

    /// A peer reports it may have missed committed instances: re-send the
    /// executed `(seq, view, digest, batch)` certificates it asks for, one
    /// bounded page at a time. Instances truncated below the stable
    /// checkpoint cannot be served per-instance — a requester that far
    /// behind is sent this replica's latest checkpoint attestation
    /// instead, steering it into state transfer.
    fn handle_catch_up_request(&self, sim: &mut Simulator, from_seq: SeqNum, requester: ReplicaId) {
        /// Per-request page cap. A still-lagging replica asks again from
        /// its new horizon, so pagination bounds every reply burst without
        /// stalling convergence.
        const MAX_INSTANCES: usize = 32;
        let (attest, replies, truncated) = {
            let inner = self.inner.borrow();
            if requester == inner.id || requester >= inner.cfg.n as u32 {
                return;
            }
            let me = inner.id;
            // Below the stable checkpoint: that history is gone. Attest the
            // latest sealed checkpoint (a StaleCheckpoint responder lies
            // and attests its oldest; `f + 1` matching honest attestations
            // outvote it at the requester).
            let attest = if from_seq <= inner.low_mark {
                let pick = match inner.byzantine {
                    ByzantineMode::StaleCheckpoint => inner.stores.iter().next(),
                    _ => inner.stores.iter().next_back(),
                };
                pick.map(|(&s, (store, offer))| {
                    let advertised = inner.advertised_offer(*offer);
                    Message::Checkpoint {
                        seq: s,
                        state_digest: store.root(),
                        replica: me,
                        store_rkey: advertised.rkey,
                        store_len: advertised.len,
                        store_epoch: advertised.epoch,
                    }
                })
            } else {
                None
            };
            // Merge the per-pipeline logs back into one seq-ordered view of
            // the executed history (each pipeline holds a disjoint residue
            // class, so a sort by seq is a perfect merge).
            let last = inner.executor.last_executed;
            let mut executed: Vec<(SeqNum, &Instance)> = if from_seq <= last {
                inner
                    .pipelines
                    .iter()
                    .flat_map(|pl| pl.log.range(from_seq..=last))
                    .filter(|(_, e)| e.executed)
                    .map(|(&s, e)| (s, e))
                    .collect()
            } else {
                Vec::new()
            };
            executed.sort_unstable_by_key(|&(s, _)| s);
            let truncated = executed.len() > MAX_INSTANCES;
            let replies = executed
                .into_iter()
                .take(MAX_INSTANCES)
                .map(|(seq, entry)| Message::CatchUpReply {
                    seq,
                    view: entry.view,
                    digest: entry.digest.expect("executed instance has digest"),
                    batch: entry.batch.clone().expect("executed instance has batch"),
                    replica: me,
                })
                .collect::<Vec<_>>();
            (attest, replies, truncated)
        };
        if let Some(msg) = attest {
            self.send_msg(sim, msg, &[requester]);
        }
        if replies.is_empty() {
            return;
        }
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.catch_up_replies_sent += replies.len() as u64;
            inner.bump("catch_up_replies_sent", replies.len() as u64);
            if truncated {
                inner.stats.catch_up_replies_truncated += 1;
                inner.bump("catch_up_replies_truncated", 1);
            }
        }
        for msg in replies {
            self.send_msg(sim, msg, &[requester]);
        }
    }

    /// `f + 1` matching CATCH-UP-REPLY certificates prove at least one
    /// honest replica executed `(seq, digest)`, which requires a commit
    /// quorum — the batch is final and safe to commit locally, even while
    /// a view change is in progress.
    fn handle_catch_up_reply(
        &self,
        sim: &mut Simulator,
        seq: SeqNum,
        view: View,
        digest: Digest,
        batch: Vec<Request>,
        replica: ReplicaId,
    ) {
        enum Outcome {
            Ignore,
            TryExec,
            Commit(View, Vec<Request>),
        }
        let outcome = {
            let mut inner = self.inner.borrow_mut();
            if replica >= inner.cfg.n as u32 || seq <= inner.executor.last_executed {
                Outcome::Ignore
            } else {
                // The digest must bind the batch, like a pre-prepare.
                let core = inner.affinity.seq_core(seq);
                let cost = inner.cfg.crypto.digest_cost(batch_bytes(&batch));
                inner.charge(sim, core, cost);
                let lane = inner.affinity.lane_of(seq);
                if batch_digest(&batch) != digest {
                    Outcome::Ignore
                } else if inner.pipelines[lane]
                    .log
                    .get(&seq)
                    .is_some_and(|e| e.executed || e.committed)
                {
                    // Already certified through the normal path; the gap
                    // may sit earlier in the log.
                    Outcome::TryExec
                } else {
                    let f = inner.cfg.f();
                    let le = inner.executor.last_executed;
                    inner.catch_up_votes.retain(|&s, _| s > le);
                    let (voters, stored) = inner
                        .catch_up_votes
                        .entry(seq)
                        .or_default()
                        .entry(digest)
                        .or_default();
                    voters.insert(replica);
                    if stored.is_none() {
                        *stored = Some((view, batch));
                    }
                    if voters.len() > f {
                        let (v, b) = stored.clone().expect("stored with first vote");
                        Outcome::Commit(v, b)
                    } else {
                        Outcome::Ignore
                    }
                }
            }
        };
        match outcome {
            Outcome::Ignore => {}
            Outcome::TryExec => self.try_execute(sim),
            Outcome::Commit(cview, cbatch) => {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.catch_up_votes.remove(&seq);
                    let now = sim.now();
                    let lane = inner.affinity.lane_of(seq);
                    inner.pipelines[lane].install(
                        seq,
                        Instance {
                            view: cview,
                            digest: Some(digest),
                            batch: Some(cbatch),
                            pre_prepared: true,
                            prepared: true,
                            committed: true,
                            committed_at: Some(now),
                            ..Instance::default()
                        },
                    );
                    inner.pipelines[lane].committed += 1;
                    inner.bump_lane_committed(lane);
                    inner.stats.catch_ups_applied += 1;
                    inner.bump("catch_ups_applied", 1);
                    inner.metrics.trace(
                        now,
                        "reptor",
                        format!("{}catch_up_applied seq={seq}", inner.metrics_prefix),
                    );
                }
                self.try_execute(sim);
            }
        }
    }

    // ------------------------------------------------------------------
    // View change
    // ------------------------------------------------------------------

    fn start_view_change(&self, sim: &mut Simulator, new_view: View) {
        let msg = {
            let mut inner = self.inner.borrow_mut();
            if new_view <= inner.voted_view || new_view <= inner.view {
                return;
            }
            inner.in_view_change = true;
            inner.voted_view = new_view;
            inner.stats.view_changes_sent += 1;
            inner.bump("view_changes", 1);
            inner.metrics.trace(
                sim.now(),
                "reptor",
                format!("{}view_change new_view={new_view}", inner.metrics_prefix),
            );
            // Prepared certificates are scattered across the pipelines;
            // merge them back into one seq-ordered proof list (disjoint
            // residue classes, so sorting by seq is a perfect merge).
            let mut prepared: Vec<PreparedProof> = inner
                .pipelines
                .iter()
                .flat_map(|pl| pl.log.iter())
                .filter(|(s, e)| **s > inner.low_mark && e.prepared && !e.executed)
                .map(|(s, e)| PreparedProof {
                    seq: *s,
                    view: e.view,
                    digest: e.digest.expect("prepared has digest"),
                    batch: e.batch.clone().expect("prepared has batch"),
                })
                .collect();
            prepared.sort_unstable_by_key(|p| p.seq);
            let me = inner.id;
            let cp_digest = inner
                .own_checkpoints
                .get(&inner.low_mark)
                .copied()
                .unwrap_or(Digest::ZERO);
            Message::ViewChange {
                new_view,
                last_stable: inner.low_mark,
                checkpoint_digest: cp_digest,
                prepared,
                replica: me,
            }
        };
        // Revoke the (now suspect) leader's fast-path WRITE permission the
        // moment the vote is cast — strictly before any NewView quorum can
        // form — so a deposed leader's in-flight deposits are RNIC-denied.
        self.revoke_slot_region();
        // Record the own vote.
        if let Message::ViewChange {
            new_view,
            last_stable,
            ref prepared,
            replica,
            ..
        } = msg
        {
            self.inner
                .borrow_mut()
                .vc_votes
                .entry(new_view)
                .or_default()
                .insert(replica, (last_stable, prepared.clone()));
        }
        self.broadcast_to_replicas(sim, msg);
        // A vote may itself stem from this replica lagging behind a healthy
        // quorum; keep the recovery path active while the view change runs.
        self.request_catch_up(sim);
        self.maybe_new_view(sim, {
            let inner = self.inner.borrow();
            inner.voted_view
        });
        // Escalation: if the view change does not complete, vote higher,
        // doubling the timeout each attempt (PBFT's exponential backoff —
        // this also keeps an isolated replica from flooding itself).
        let replica = self.clone();
        let backoff = {
            let mut inner = self.inner.borrow_mut();
            inner.vc_attempts = (inner.vc_attempts + 1).min(16);
            let shift = inner.vc_attempts.min(10);
            inner.cfg.view_change_timeout * (1u64 << shift)
        };
        sim.schedule_in(
            backoff,
            Box::new(move |sim| {
                let mut stood_down_in = None;
                let next = {
                    let mut inner = replica.inner.borrow_mut();
                    if !inner.in_view_change || inner.byzantine == ByzantineMode::Crash {
                        None
                    } else {
                        // A view change needs f + 1 voters to gather
                        // support. A lone laggard whose catch-up round has
                        // since landed (every buffered request executed)
                        // stands down instead of escalating forever.
                        let caught_up = inner.pending.iter().all(|r| {
                            inner
                                .client_state
                                .get(&r.client)
                                .is_some_and(|(ts, _)| *ts >= r.timestamp)
                        });
                        if caught_up {
                            inner.in_view_change = false;
                            inner.vc_attempts = 0;
                            // Standing down effectively withdraws the
                            // outstanding votes: reset `voted_view` so a
                            // later, genuine view change re-votes with
                            // fresh prepared proofs instead of leaving a
                            // stale certificate snapshot live at peers.
                            inner.voted_view = inner.view;
                            inner.stats.view_changes_abandoned += 1;
                            inner.bump("view_changes_abandoned", 1);
                            inner.metrics.trace(
                                sim.now(),
                                "reptor",
                                format!("{}view_change_abandoned", inner.metrics_prefix),
                            );
                            stood_down_in = Some(inner.view);
                            None
                        } else {
                            Some(inner.voted_view + 1)
                        }
                    }
                };
                if let Some(view) = stood_down_in {
                    // Standing down keeps the current leader in charge;
                    // re-arm its revoked fast-path grant with a fresh
                    // region so the one-sided path resumes.
                    replica.grant_slot_region(sim, view);
                }
                if let Some(v) = next {
                    replica.start_view_change(sim, v);
                }
            }),
        );
    }

    fn handle_view_change(
        &self,
        sim: &mut Simulator,
        new_view: View,
        last_stable: SeqNum,
        prepared: Vec<PreparedProof>,
        replica: ReplicaId,
    ) {
        let join = {
            let mut inner = self.inner.borrow_mut();
            if new_view <= inner.view {
                return;
            }
            inner
                .vc_votes
                .entry(new_view)
                .or_default()
                .insert(replica, (last_stable, prepared));
            // Liveness rule: join a view change supported by f + 1 others.
            let f = inner.cfg.f();
            inner.vc_votes[&new_view].len() > f && inner.voted_view < new_view
        };
        if join {
            self.start_view_change(sim, new_view);
        }
        self.maybe_new_view(sim, new_view);
    }

    fn maybe_new_view(&self, sim: &mut Simulator, new_view: View) {
        let build = {
            let inner = self.inner.borrow();
            let quorum = inner.cfg.commit_quorum();
            inner.cfg.primary(new_view) == inner.id
                && inner.view < new_view
                && inner
                    .vc_votes
                    .get(&new_view)
                    .is_some_and(|v| v.len() >= quorum)
        };
        if !build {
            return;
        }
        let (pre_prepares, me) = {
            let inner = self.inner.borrow();
            let votes = &inner.vc_votes[&new_view];
            // Collect, per sequence number, the prepared certificate from
            // the highest view.
            let mut best: BTreeMap<SeqNum, &PreparedProof> = BTreeMap::new();
            for (_, (_, proofs)) in votes.iter() {
                for p in proofs {
                    match best.get(&p.seq) {
                        Some(b) if b.view >= p.view => {}
                        _ => {
                            best.insert(p.seq, p);
                        }
                    }
                }
            }
            let max_stable = votes.values().map(|(s, _)| *s).max().unwrap_or(0);
            let max_seq = best.keys().max().copied().unwrap_or(max_stable);
            let mut list = Vec::new();
            for seq in (max_stable + 1)..=max_seq {
                match best.get(&seq) {
                    Some(p) => list.push((seq, p.digest, p.batch.clone())),
                    // Gap: propose a null batch.
                    None => list.push((seq, batch_digest(&[]), Vec::new())),
                }
            }
            (list, inner.id)
        };
        self.broadcast_to_replicas(
            sim,
            Message::NewView {
                view: new_view,
                pre_prepares: pre_prepares.clone(),
                replica: me,
            },
        );
        self.enter_view(sim, new_view, pre_prepares, true);
    }

    fn handle_new_view(
        &self,
        sim: &mut Simulator,
        view: View,
        pre_prepares: Vec<(SeqNum, Digest, Vec<Request>)>,
        replica: ReplicaId,
    ) {
        {
            let inner = self.inner.borrow();
            if view <= inner.view || inner.cfg.primary(view) != replica {
                return;
            }
            // Validate digests bind the re-proposed batches.
            for (_, digest, batch) in &pre_prepares {
                if batch_digest(batch) != *digest {
                    return; // Byzantine new-view
                }
            }
        }
        self.enter_view(sim, view, pre_prepares, false);
    }

    fn enter_view(
        &self,
        sim: &mut Simulator,
        view: View,
        pre_prepares: Vec<(SeqNum, Digest, Vec<Request>)>,
        as_primary: bool,
    ) {
        // A LateSlotWriter learns of the new view here and fires its
        // retained — revoked — grants before adopting the view.
        self.maybe_fire_stale_slot_writes(sim, view);
        let prepares_to_send = {
            let mut inner = self.inner.borrow_mut();
            inner.view = view;
            inner.in_view_change = false;
            inner.vc_attempts = 0;
            inner.bump("new_views_entered", 1);
            inner.metrics.trace(
                sim.now(),
                "reptor",
                format!("{}enter_view view={view}", inner.metrics_prefix),
            );
            inner.vc_votes.retain(|&v, _| v > view);
            // A deposed leader's grants died with the old view; followers
            // invalidated those regions when they voted.
            inner.slot_grants.retain(|_, g| g.view >= view);
            let mut max_seq = inner.next_seq - 1;
            let mut to_send = Vec::new();
            for (seq, digest, batch) in pre_prepares {
                max_seq = max_seq.max(seq);
                if seq <= inner.executor.last_executed {
                    continue;
                }
                for r in &batch {
                    inner.proposed.insert((r.client, r.timestamp));
                }
                let me = inner.id;
                let lane = inner.affinity.lane_of(seq);
                let entry = inner.pipelines[lane].install(
                    seq,
                    Instance {
                        view,
                        digest: Some(digest),
                        batch: Some(batch),
                        pre_prepared: true,
                        ..Instance::default()
                    },
                );
                entry.prepares.insert(me);
                inner.note_pre_prepare(sim.now(), seq);
                if !as_primary {
                    to_send.push((seq, digest));
                }
            }
            inner.next_seq = (max_seq + 1).max(inner.executor.last_executed + 1);
            to_send
        };
        let me = self.id();
        for (seq, digest) in prepares_to_send {
            {
                let mut inner = self.inner.borrow_mut();
                inner.stats.prepares_sent += 1;
                inner.bump("prepares_sent", 1);
            }
            self.broadcast_to_replicas(
                sim,
                Message::Prepare {
                    view,
                    seq,
                    digest,
                    replica: me,
                },
            );
            self.maybe_prepared(sim, seq);
        }
        // Grant the new leader fast-path WRITE permission into a fresh
        // slot region (the old region was invalidated with the vote).
        self.grant_slot_region(sim, view);
        // Roll the read lease: the view installation may have replayed
        // batches wholesale, so revoke the old region (RNIC fence) and
        // expose a fresh image of the post-installation state.
        self.roll_read_lease(sim);
        // Pending requests at the new primary flow again.
        self.try_propose(sim);
    }

    // ------------------------------------------------------------------
    // Outbound path
    // ------------------------------------------------------------------

    fn broadcast_to_replicas(&self, sim: &mut Simulator, msg: Message) {
        let peers: Vec<u32> = {
            let inner = self.inner.borrow();
            (0..inner.cfg.n as u32).filter(|&r| r != inner.id).collect()
        };
        self.send_msg(sim, msg, &peers);
    }

    fn send_msg(&self, sim: &mut Simulator, msg: Message, receivers: &[u32]) {
        if receivers.is_empty() {
            return;
        }
        let (signed, transport, send_at) = {
            let mut inner = self.inner.borrow_mut();
            if inner.byzantine == ByzantineMode::Crash {
                return;
            }
            let mut signed = SignedMessage::create(&msg, &inner.keys, receivers);
            if inner.byzantine == ByzantineMode::CorruptMacs {
                for (_, mac) in &mut signed.auth.macs {
                    mac[0] ^= 0xFF;
                }
            }
            let core = inner.msg_core(&msg);
            let cost = inner
                .cfg
                .crypto
                .authenticator_cost(signed.body.len(), receivers.len());
            let done = inner.charge(sim, core, cost);
            // Keep the wire order equal to the submission order even when
            // MAC work lands on different pipeline cores: the comm stack
            // still has a single outbound sender queue.
            let at = done.max(inner.send_horizon);
            inner.send_horizon = at;
            (signed, inner.transport.clone(), at)
        };
        let bytes = signed.encode();
        let receivers = receivers.to_vec();
        sim.schedule_at(
            send_at,
            Box::new(move |sim| {
                for &r in &receivers {
                    transport.send(sim, r, bytes.clone());
                }
            }),
        );
    }
}

impl ReplicaInner {
    /// Increments `reptor.r{id}.{metric}` by `n`.
    fn bump(&self, metric: &str, n: u64) {
        self.metrics
            .incr_by(&format!("{}{metric}", self.metrics_prefix), n);
    }

    /// Records `value` in the `reptor.r{id}.{metric}` histogram.
    fn observe(&self, metric: &str, value: u64) {
        self.metrics
            .observe(&format!("{}{metric}", self.metrics_prefix), value);
    }

    /// Increments the per-pipeline committed-instance counter metric.
    fn bump_lane_committed(&self, lane: usize) {
        self.metrics
            .incr(&format!("{}pipeline.{lane}.committed", self.metrics_prefix));
    }

    /// Marks `seq` as pre-prepared at `now`: stamps the instance and
    /// settles the request→pre-prepare latency for every request in the
    /// batch whose arrival this replica witnessed.
    fn note_pre_prepare(&mut self, now: Nanos, seq: SeqNum) {
        let lane = self.affinity.lane_of(seq);
        let keys: Vec<(ClientId, u64)> = {
            let Some(entry) = self.pipelines[lane].log.get_mut(&seq) else {
                return;
            };
            entry.pre_prepared_at = Some(now);
            entry
                .batch
                .as_ref()
                .map(|b| b.iter().map(|r| (r.client, r.timestamp)).collect())
                .unwrap_or_default()
        };
        for key in keys {
            if let Some(t0) = self.arrivals.remove(&key) {
                self.observe(
                    "phase.request_to_preprepare",
                    now.as_nanos().saturating_sub(t0.as_nanos()),
                );
            }
        }
    }

    /// The agreement window `(low_mark, low_mark + 2L]`: the low watermark
    /// itself is *excluded* (it is covered by the stable checkpoint), the
    /// high watermark is *included* — matching `try_propose`, which blocks
    /// once `next_seq > low_mark + 2L`.
    fn in_watermarks(&self, seq: SeqNum) -> bool {
        seq > self.low_mark && seq <= self.low_mark + 2 * self.cfg.checkpoint_interval
    }

    /// Claims fast-path slot `seq % slots` for `seq`. The slot count
    /// equals the window size (`2L`), so two *in-window* instances never
    /// collide — but a slot may still hold a previous occupant that is
    /// below the high-water mark yet uncommitted (the window slid before
    /// it stably checkpointed). Such a slot must not be recycled until
    /// checkpoint GC retires the occupant, or a late doorbell for the old
    /// sequence number would read the new record; the depositor falls
    /// back to the message path instead. Re-claiming for the same `seq`
    /// (a leader retransmit) is idempotent.
    fn slot_accept(&mut self, seq: SeqNum) -> bool {
        let slot = seq % (2 * self.cfg.checkpoint_interval);
        if let Some(&prev) = self.slot_seqs.get(&slot) {
            if prev != seq && prev > self.low_mark {
                return false;
            }
        }
        self.slot_seqs.insert(slot, seq);
        true
    }

    /// Serializes the executed state at checkpoint `seq`: service snapshot
    /// plus the client session table, sorted by client id so every honest
    /// replica produces the identical byte string (and thus root digest).
    fn build_checkpoint_payload(&self, seq: SeqNum) -> CheckpointPayload {
        let mut clients: Vec<(ClientId, u64, Vec<u8>)> = self
            .client_state
            .iter()
            .map(|(&c, (ts, reply))| (c, *ts, reply.clone()))
            .collect();
        clients.sort_unstable_by_key(|entry| entry.0);
        CheckpointPayload {
            seq,
            service_snapshot: self.service.snapshot(),
            clients,
        }
    }

    /// The core an outbound message's MAC work runs on: the owning
    /// pipeline's core for agreement traffic, the execution core otherwise.
    fn msg_core(&self, msg: &Message) -> CoreId {
        match msg {
            Message::PrePrepare { seq, .. }
            | Message::Prepare { seq, .. }
            | Message::Commit { seq, .. }
            | Message::CatchUpReply { seq, .. } => self.affinity.seq_core(*seq),
            _ => self.affinity.exec_core(),
        }
    }

    /// The core inbound MAC verification runs on. The transport's demux
    /// already peeked the lane from the wire; trust it only for agreement
    /// messages (everything else runs on the execution core regardless of
    /// what a hostile frame header claims).
    fn lane_core_for(&self, lane: usize, msg: &Message) -> CoreId {
        match msg {
            Message::PrePrepare { .. }
            | Message::Prepare { .. }
            | Message::Commit { .. }
            | Message::CatchUpReply { .. } => self.pipelines[lane % self.pipelines.len()].core,
            _ => self.affinity.exec_core(),
        }
    }

    fn charge(&mut self, sim: &Simulator, core: CoreId, work: Nanos) -> Nanos {
        self.net
            .host(self.host)
            .borrow_mut()
            .exec(sim.now(), core, work)
    }

    /// The store offer this replica actually advertises in checkpoint
    /// attestations. Honest replicas advertise the real (current-epoch)
    /// offer; a [`ByzantineMode::StaleEpochOffer`] replica substitutes the
    /// rkey of its previous, invalidated region re-tagged with the current
    /// epoch — the advisory epoch field is attacker-controlled, so every
    /// message-path check passes and only the responder RNIC refusing the
    /// revoked rkey exposes the lie.
    fn advertised_offer(&self, real: StateOffer) -> StateOffer {
        match (self.byzantine, self.stale_offer) {
            (ByzantineMode::StaleEpochOffer, Some(stale)) => StateOffer {
                rkey: stale.rkey,
                len: stale.len,
                epoch: self.recovery_epoch,
            },
            _ => real,
        }
    }
}

fn batch_bytes(batch: &[Request]) -> usize {
    batch.iter().map(|r| r.payload.len() + 16).sum::<usize>()
}

/// Rejoin-probe backoff: doubles the probe period per attempt, capped at
/// `base << 5` — the same schedule shape as the transport reconnect
/// policy, so a restarted replica and its re-dialing channels converge on
/// the same cadence instead of the probe flooding a still-down group.
fn rejoin_probe_delay(base: Nanos, attempts: u32) -> Nanos {
    base * (1u64 << attempts.min(5))
}

/// Byzantine store bytes: flips one byte in every chunk-sized slice, so
/// each corrupted chunk fails its digest check at the fetcher while
/// lengths (and therefore read offsets) stay valid.
fn corrupt_chunks(bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    for chunk in out.chunks_mut(CHUNK_SIZE) {
        if let Some(b) = chunk.first_mut() {
            *b ^= 0xA5;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CounterService};

    fn cluster(interval: u64, seed: u64) -> Cluster {
        Cluster::sim_transport(
            ReptorConfig {
                checkpoint_interval: interval,
                ..ReptorConfig::small()
            },
            1,
            seed,
            || Box::new(CounterService::default()),
        )
    }

    #[test]
    fn watermark_window_boundaries() {
        let c = cluster(8, 40);
        let r = &c.replicas[1];
        // Window is (low_mark, low_mark + 2L] with L = 8, low_mark = 0.
        assert!(!r.in_watermarks(0), "the low mark itself is outside");
        assert!(r.in_watermarks(1), "first seq past the low mark");
        assert!(r.in_watermarks(16), "the high watermark is inclusive");
        assert!(!r.in_watermarks(17), "one past the high watermark");
    }

    #[test]
    fn slot_not_recycled_while_occupant_in_window() {
        let c = cluster(8, 42);
        let r = &c.replicas[1];
        // L = 8 → 16 slots; seq 3 and seq 19 share slot 3.
        assert!(r.slot_accept_for_test(3), "fresh slot accepts");
        assert!(r.slot_accept_for_test(3), "leader retransmit is idempotent");
        assert!(
            !r.slot_accept_for_test(19),
            "slot must not be recycled while seq 3 is in the window but uncommitted"
        );
        // Checkpoint GC stabilises through seq 8: occupant 3 retires.
        r.gc_slots_for_test(8);
        assert!(
            r.slot_accept_for_test(19),
            "after the occupant is checkpointed the slot is reusable"
        );
    }

    #[test]
    fn pre_prepare_at_high_watermark_accepted_one_past_rejected() {
        let mut c = cluster(8, 41);
        let batch = vec![Request {
            client: 4,
            timestamp: 1,
            payload: b"inc".to_vec(),
        }];
        let digest = batch_digest(&batch);
        c.replicas[1].inject_message(
            &mut c.sim,
            Message::PrePrepare {
                view: 0,
                seq: 16, // exactly low_mark + 2 * checkpoint_interval
                digest,
                batch: batch.clone(),
            },
        );
        c.settle();
        assert_eq!(
            c.replicas[1].stats().prepares_sent,
            1,
            "seq == high watermark must be accepted"
        );
        c.replicas[1].inject_message(
            &mut c.sim,
            Message::PrePrepare {
                view: 0,
                seq: 17,
                digest,
                batch,
            },
        );
        c.settle();
        assert_eq!(
            c.replicas[1].stats().prepares_sent,
            1,
            "seq == high watermark + 1 must be rejected"
        );
    }

    #[test]
    fn rejoin_probe_backoff_matches_reconnect_schedule() {
        let base = Nanos::from_millis(40);
        let delays: Vec<u64> = (0..8)
            .map(|a| rejoin_probe_delay(base, a).as_nanos())
            .collect();
        assert_eq!(delays[0], base.as_nanos(), "first probe fires after base");
        // Doubles per attempt up to the cap...
        for (i, w) in delays.windows(2).take(5).enumerate() {
            assert_eq!(w[1], w[0] * 2, "attempt {i} must double");
        }
        // ...then stays clamped at base << 5, the transport reconnect cap.
        assert_eq!(delays[5], base.as_nanos() << 5);
        assert_eq!(delays[6], delays[5], "cap holds past attempt 5");
        assert_eq!(delays[7], delays[5], "cap holds past attempt 5");
    }
}
