//! PBFT protocol messages and their wire encoding.

use bft_crypto::{Authenticator, Digest, KeyTable, DIGEST_LEN};

use crate::codec::{CodecError, Reader, Writer};

/// A view number (the current primary is `view % n`).
pub type View = u64;
/// An agreement sequence number.
pub type SeqNum = u64;
/// Replica identifier (`0..n`).
pub type ReplicaId = u32;
/// Client identifier (assigned above the replica id range).
pub type ClientId = u32;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The issuing client.
    pub client: ClientId,
    /// Client-local monotonically increasing timestamp (deduplication and
    /// reply matching).
    pub timestamp: u64,
    /// Opaque operation for the replicated service.
    pub payload: Vec<u8>,
}

impl Request {
    /// The request digest.
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[
            &self.client.to_le_bytes(),
            &self.timestamp.to_le_bytes(),
            &self.payload,
        ])
    }

    fn encode(&self, w: &mut Writer) {
        w.u32(self.client);
        w.u64(self.timestamp);
        w.bytes(&self.payload);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Request, CodecError> {
        Ok(Request {
            client: r.u32()?,
            timestamp: r.u64()?,
            payload: r.bytes()?,
        })
    }
}

/// Digest of an ordered batch of requests.
pub fn batch_digest(batch: &[Request]) -> Digest {
    let parts: Vec<Digest> = batch.iter().map(Request::digest).collect();
    let slices: Vec<&[u8]> = parts.iter().map(|d| d.as_ref()).collect();
    Digest::of_parts(&slices)
}

/// Evidence that a request batch reached the *prepared* state in some view
/// (carried in VIEW-CHANGE messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedProof {
    /// Sequence number of the batch.
    pub seq: SeqNum,
    /// View in which it prepared.
    pub view: View,
    /// The batch digest.
    pub digest: Digest,
    /// The batch itself, so the new primary can re-propose it.
    pub batch: Vec<Request>,
}

/// A PBFT protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client request submitted for ordering.
    Request(Request),
    /// Leader proposal: assignment of a sequence number to a batch.
    PrePrepare {
        /// Current view.
        view: View,
        /// Assigned sequence number.
        seq: SeqNum,
        /// Digest of `batch`.
        digest: Digest,
        /// The proposed request batch.
        batch: Vec<Request>,
    },
    /// Backup agreement on the leader's assignment.
    Prepare {
        /// Current view.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// Batch digest.
        digest: Digest,
        /// Sending replica.
        replica: ReplicaId,
    },
    /// Commit vote: the sender has a prepared certificate.
    Commit {
        /// Current view.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// Batch digest.
        digest: Digest,
        /// Sending replica.
        replica: ReplicaId,
    },
    /// Execution result returned to a client.
    Reply {
        /// View at execution time.
        view: View,
        /// The client the reply is for.
        client: ClientId,
        /// Echo of the request timestamp.
        timestamp: u64,
        /// Replying replica.
        replica: ReplicaId,
        /// Service result.
        result: Vec<u8>,
    },
    /// Periodic stable-state advertisement for log truncation.
    ///
    /// Doubles as the checkpoint-store certificate for state transfer: the
    /// digest is the chunked store's root, and on RDMA transports the
    /// sender piggybacks the rkey of the registered store region so a
    /// lagging replica can fetch chunks with one-sided READs.
    Checkpoint {
        /// Sequence number the checkpoint covers.
        seq: SeqNum,
        /// Root digest of the checkpoint store at `seq` (covers the
        /// serialized service state and executor position).
        state_digest: Digest,
        /// Sending replica.
        replica: ReplicaId,
        /// Remote key of the sender's registered checkpoint-store region;
        /// zero when the transport has no one-sided read path.
        store_rkey: u32,
        /// Byte length of the registered store region (zero with no offer).
        store_len: u64,
        /// Recovery epoch the store region was registered under. A proactive
        /// epoch roll re-registers the region and invalidates the previous
        /// one, so an rkey tagged with a stale epoch is fenced by the RNIC.
        store_epoch: u64,
    },
    /// Vote to move to a new view after a suspected faulty primary.
    ViewChange {
        /// The proposed new view.
        new_view: View,
        /// The sender's last stable checkpoint.
        last_stable: SeqNum,
        /// Digest of that checkpoint's state.
        checkpoint_digest: Digest,
        /// Prepared certificates above the stable checkpoint.
        prepared: Vec<PreparedProof>,
        /// Sending replica.
        replica: ReplicaId,
    },
    /// The new primary's installation message.
    NewView {
        /// The view being installed.
        view: View,
        /// Re-issued proposals `(seq, digest, batch)` for prepared batches.
        pre_prepares: Vec<(SeqNum, Digest, Vec<Request>)>,
        /// The new primary.
        replica: ReplicaId,
    },
    /// A lagging replica asks its peers to re-send committed instances it
    /// missed. Agreement messages lost above the transport (e.g. corrupted
    /// frames rejected by MAC verification) are never retransmitted by the
    /// fabric, so the protocol provides its own recovery path.
    CatchUpRequest {
        /// First sequence number the sender is missing
        /// (its `last_executed + 1`).
        from_seq: SeqNum,
        /// Sending replica.
        replica: ReplicaId,
    },
    /// Re-delivery of one executed instance to a lagging replica. `f + 1`
    /// matching replies prove at least one honest replica executed the
    /// batch, which requires a commit certificate — the batch is final.
    CatchUpReply {
        /// Sequence number of the instance.
        seq: SeqNum,
        /// View in which the sender holds the instance.
        view: View,
        /// Batch digest.
        digest: Digest,
        /// The executed batch.
        batch: Vec<Request>,
        /// Sending replica.
        replica: ReplicaId,
    },
    /// A replica in state transfer asks a peer for one piece of its
    /// checkpoint store (the message path; RDMA transports read chunks
    /// one-sided instead).
    StateRequest {
        /// Checkpoint sequence number being fetched.
        seq: SeqNum,
        /// Chunk index, or [`MANIFEST_CHUNK`] for the store manifest.
        chunk: u32,
        /// Requesting replica.
        replica: ReplicaId,
        /// Recovery epoch of the offer being fetched; the responder rejects
        /// requests carrying a stale epoch (the message-path mirror of the
        /// RNIC rkey fence).
        epoch: u64,
    },
    /// One piece of a checkpoint store, served to a fetching replica. The
    /// fetcher verifies `data` against the digest recorded in the
    /// certified manifest, so a Byzantine responder cannot plant state.
    StateChunk {
        /// Checkpoint sequence number.
        seq: SeqNum,
        /// Chunk index, or [`MANIFEST_CHUNK`] for the store manifest.
        chunk: u32,
        /// Chunk (or manifest) bytes.
        data: Vec<u8>,
        /// Responding replica.
        replica: ReplicaId,
    },
    /// A follower's fast-path WRITE-permission grant towards the primary of
    /// `view`: the rkey of its pre-prepare slot region for that view. Sent
    /// at view installation; the region is revoked (and the rkey fenced by
    /// the RNIC) when the follower moves past `view`.
    SlotGrant {
        /// View the grant is valid for.
        view: View,
        /// Granting replica (the slot region's owner).
        replica: ReplicaId,
        /// Remote WRITE key of the slot region.
        rkey: u32,
        /// Size of one slot in bytes.
        slot_size: u64,
        /// Number of slots in the region (the agreement window).
        slots: u64,
    },
    /// A client's request for a replica's current read lease (the rkey of
    /// its applied-state region). Sent before the first one-sided read and
    /// again whenever a read is RNIC-denied, which is how clients discover
    /// revocations.
    LeaseQuery {
        /// Querying client.
        client: ClientId,
    },
    /// A replica's answer to [`Message::LeaseQuery`]: the rkey under which
    /// its applied-state region is currently readable. `rkey == 0` means
    /// no lease is available (leases disabled, or transport without
    /// one-sided reads) and the client must use message-path reads.
    LeaseGrant {
        /// Granting replica (the region's owner).
        replica: ReplicaId,
        /// Remote READ key of the applied-state region; 0 if none.
        rkey: u32,
        /// Region length in bytes.
        len: u64,
        /// Recovery epoch the lease was issued under (diagnostics; the
        /// RNIC, not this field, enforces revocation).
        epoch: u64,
    },
}

/// Sentinel chunk index requesting/carrying the checkpoint-store manifest
/// instead of a data chunk.
pub const MANIFEST_CHUNK: u32 = u32::MAX;

impl Message {
    /// Short tag for logs and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Request(_) => "REQUEST",
            Message::PrePrepare { .. } => "PRE-PREPARE",
            Message::Prepare { .. } => "PREPARE",
            Message::Commit { .. } => "COMMIT",
            Message::Reply { .. } => "REPLY",
            Message::Checkpoint { .. } => "CHECKPOINT",
            Message::ViewChange { .. } => "VIEW-CHANGE",
            Message::NewView { .. } => "NEW-VIEW",
            Message::CatchUpRequest { .. } => "CATCH-UP-REQUEST",
            Message::CatchUpReply { .. } => "CATCH-UP-REPLY",
            Message::StateRequest { .. } => "STATE-REQUEST",
            Message::StateChunk { .. } => "STATE-CHUNK",
            Message::SlotGrant { .. } => "SLOT-GRANT",
            Message::LeaseQuery { .. } => "LEASE-QUERY",
            Message::LeaseGrant { .. } => "LEASE-GRANT",
        }
    }

    /// Encodes the message body (without authentication).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Message::Request(req) => {
                w.u8(0);
                req.encode(&mut w);
            }
            Message::PrePrepare {
                view,
                seq,
                digest,
                batch,
            } => {
                w.u8(1);
                w.u64(*view);
                w.u64(*seq);
                w.array(digest.as_bytes());
                w.u32(batch.len() as u32);
                for r in batch {
                    r.encode(&mut w);
                }
            }
            Message::Prepare {
                view,
                seq,
                digest,
                replica,
            } => {
                w.u8(2);
                w.u64(*view);
                w.u64(*seq);
                w.array(digest.as_bytes());
                w.u32(*replica);
            }
            Message::Commit {
                view,
                seq,
                digest,
                replica,
            } => {
                w.u8(3);
                w.u64(*view);
                w.u64(*seq);
                w.array(digest.as_bytes());
                w.u32(*replica);
            }
            Message::Reply {
                view,
                client,
                timestamp,
                replica,
                result,
            } => {
                w.u8(4);
                w.u64(*view);
                w.u32(*client);
                w.u64(*timestamp);
                w.u32(*replica);
                w.bytes(result);
            }
            Message::Checkpoint {
                seq,
                state_digest,
                replica,
                store_rkey,
                store_len,
                store_epoch,
            } => {
                w.u8(5);
                w.u64(*seq);
                w.array(state_digest.as_bytes());
                w.u32(*replica);
                w.u32(*store_rkey);
                w.u64(*store_len);
                w.u64(*store_epoch);
            }
            Message::ViewChange {
                new_view,
                last_stable,
                checkpoint_digest,
                prepared,
                replica,
            } => {
                w.u8(6);
                w.u64(*new_view);
                w.u64(*last_stable);
                w.array(checkpoint_digest.as_bytes());
                w.u32(prepared.len() as u32);
                for p in prepared {
                    w.u64(p.seq);
                    w.u64(p.view);
                    w.array(p.digest.as_bytes());
                    w.u32(p.batch.len() as u32);
                    for r in &p.batch {
                        r.encode(&mut w);
                    }
                }
                w.u32(*replica);
            }
            Message::NewView {
                view,
                pre_prepares,
                replica,
            } => {
                w.u8(7);
                w.u64(*view);
                w.u32(pre_prepares.len() as u32);
                for (seq, digest, batch) in pre_prepares {
                    w.u64(*seq);
                    w.array(digest.as_bytes());
                    w.u32(batch.len() as u32);
                    for r in batch {
                        r.encode(&mut w);
                    }
                }
                w.u32(*replica);
            }
            Message::CatchUpRequest { from_seq, replica } => {
                w.u8(8);
                w.u64(*from_seq);
                w.u32(*replica);
            }
            Message::CatchUpReply {
                seq,
                view,
                digest,
                batch,
                replica,
            } => {
                w.u8(9);
                w.u64(*seq);
                w.u64(*view);
                w.array(digest.as_bytes());
                w.u32(batch.len() as u32);
                for r in batch {
                    r.encode(&mut w);
                }
                w.u32(*replica);
            }
            Message::StateRequest {
                seq,
                chunk,
                replica,
                epoch,
            } => {
                w.u8(10);
                w.u64(*seq);
                w.u32(*chunk);
                w.u32(*replica);
                w.u64(*epoch);
            }
            Message::StateChunk {
                seq,
                chunk,
                data,
                replica,
            } => {
                w.u8(11);
                w.u64(*seq);
                w.u32(*chunk);
                w.bytes(data);
                w.u32(*replica);
            }
            Message::SlotGrant {
                view,
                replica,
                rkey,
                slot_size,
                slots,
            } => {
                w.u8(12);
                w.u64(*view);
                w.u32(*replica);
                w.u32(*rkey);
                w.u64(*slot_size);
                w.u64(*slots);
            }
            Message::LeaseQuery { client } => {
                w.u8(13);
                w.u32(*client);
            }
            Message::LeaseGrant {
                replica,
                rkey,
                len,
                epoch,
            } => {
                w.u8(14);
                w.u32(*replica);
                w.u32(*rkey);
                w.u64(*len);
                w.u64(*epoch);
            }
        }
        w.finish()
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input (treated by replicas as a
    /// Byzantine message and dropped).
    pub fn decode(buf: &[u8]) -> Result<Message, CodecError> {
        let mut r = Reader::new(buf);
        let msg = Self::decode_inner(&mut r)?;
        r.expect_end()?;
        Ok(msg)
    }

    fn decode_inner(r: &mut Reader<'_>) -> Result<Message, CodecError> {
        let tag = r.u8()?;
        Ok(match tag {
            0 => Message::Request(Request::decode(r)?),
            1 => {
                let view = r.u64()?;
                let seq = r.u64()?;
                let digest = Digest(r.array::<DIGEST_LEN>()?);
                let n = r.u32()? as usize;
                let mut batch = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    batch.push(Request::decode(r)?);
                }
                Message::PrePrepare {
                    view,
                    seq,
                    digest,
                    batch,
                }
            }
            2 => Message::Prepare {
                view: r.u64()?,
                seq: r.u64()?,
                digest: Digest(r.array::<DIGEST_LEN>()?),
                replica: r.u32()?,
            },
            3 => Message::Commit {
                view: r.u64()?,
                seq: r.u64()?,
                digest: Digest(r.array::<DIGEST_LEN>()?),
                replica: r.u32()?,
            },
            4 => Message::Reply {
                view: r.u64()?,
                client: r.u32()?,
                timestamp: r.u64()?,
                replica: r.u32()?,
                result: r.bytes()?,
            },
            5 => Message::Checkpoint {
                seq: r.u64()?,
                state_digest: Digest(r.array::<DIGEST_LEN>()?),
                replica: r.u32()?,
                store_rkey: r.u32()?,
                store_len: r.u64()?,
                store_epoch: r.u64()?,
            },
            6 => {
                let new_view = r.u64()?;
                let last_stable = r.u64()?;
                let checkpoint_digest = Digest(r.array::<DIGEST_LEN>()?);
                let np = r.u32()? as usize;
                let mut prepared = Vec::with_capacity(np.min(4096));
                for _ in 0..np {
                    let seq = r.u64()?;
                    let view = r.u64()?;
                    let digest = Digest(r.array::<DIGEST_LEN>()?);
                    let nb = r.u32()? as usize;
                    let mut batch = Vec::with_capacity(nb.min(4096));
                    for _ in 0..nb {
                        batch.push(Request::decode(r)?);
                    }
                    prepared.push(PreparedProof {
                        seq,
                        view,
                        digest,
                        batch,
                    });
                }
                Message::ViewChange {
                    new_view,
                    last_stable,
                    checkpoint_digest,
                    prepared,
                    replica: r.u32()?,
                }
            }
            7 => {
                let view = r.u64()?;
                let np = r.u32()? as usize;
                let mut pre_prepares = Vec::with_capacity(np.min(4096));
                for _ in 0..np {
                    let seq = r.u64()?;
                    let digest = Digest(r.array::<DIGEST_LEN>()?);
                    let nb = r.u32()? as usize;
                    let mut batch = Vec::with_capacity(nb.min(4096));
                    for _ in 0..nb {
                        batch.push(Request::decode(r)?);
                    }
                    pre_prepares.push((seq, digest, batch));
                }
                Message::NewView {
                    view,
                    pre_prepares,
                    replica: r.u32()?,
                }
            }
            8 => Message::CatchUpRequest {
                from_seq: r.u64()?,
                replica: r.u32()?,
            },
            9 => {
                let seq = r.u64()?;
                let view = r.u64()?;
                let digest = Digest(r.array::<DIGEST_LEN>()?);
                let nb = r.u32()? as usize;
                let mut batch = Vec::with_capacity(nb.min(4096));
                for _ in 0..nb {
                    batch.push(Request::decode(r)?);
                }
                Message::CatchUpReply {
                    seq,
                    view,
                    digest,
                    batch,
                    replica: r.u32()?,
                }
            }
            10 => Message::StateRequest {
                seq: r.u64()?,
                chunk: r.u32()?,
                replica: r.u32()?,
                epoch: r.u64()?,
            },
            11 => Message::StateChunk {
                seq: r.u64()?,
                chunk: r.u32()?,
                data: r.bytes()?,
                replica: r.u32()?,
            },
            12 => Message::SlotGrant {
                view: r.u64()?,
                replica: r.u32()?,
                rkey: r.u32()?,
                slot_size: r.u64()?,
                slots: r.u64()?,
            },
            13 => Message::LeaseQuery { client: r.u32()? },
            14 => Message::LeaseGrant {
                replica: r.u32()?,
                rkey: r.u32()?,
                len: r.u64()?,
                epoch: r.u64()?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    what: "Message",
                    tag,
                })
            }
        })
    }
}

/// A message plus its MAC-vector authenticator, as it travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedMessage {
    /// Encoded message body.
    pub body: Vec<u8>,
    /// MAC vector over `body`.
    pub auth: Authenticator,
}

impl SignedMessage {
    /// Authenticates `msg` from the holder of `keys` towards `receivers`.
    pub fn create(msg: &Message, keys: &KeyTable, receivers: &[u32]) -> SignedMessage {
        let body = msg.encode();
        let auth = keys.authenticate(&body, receivers);
        SignedMessage { body, auth }
    }

    /// Wire encoding: body, sender, MAC vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.body);
        w.u32(self.auth.sender);
        w.u32(self.auth.macs.len() as u32);
        for (node, mac) in &self.auth.macs {
            w.u32(*node);
            w.array(mac);
        }
        w.finish()
    }

    /// Decodes the wire form.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    pub fn decode(buf: &[u8]) -> Result<SignedMessage, CodecError> {
        let mut r = Reader::new(buf);
        let body = r.bytes()?;
        let sender = r.u32()?;
        let n = r.u32()? as usize;
        if n > 1_000_000 {
            return Err(CodecError::BadLength {
                claimed: n,
                remaining: r.remaining(),
            });
        }
        let mut macs = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let node = r.u32()?;
            let mac = r.array::<DIGEST_LEN>()?;
            macs.push((node, mac));
        }
        r.expect_end()?;
        Ok(SignedMessage {
            body,
            auth: Authenticator { sender, macs },
        })
    }

    /// Peeks the agreement sequence number out of an encoded wire frame
    /// without decoding or verifying it — the cheap header inspection the
    /// COP transport demultiplexer uses to route a frame to its owning
    /// pipeline before MAC verification runs on that pipeline's core.
    ///
    /// Returns `Some(seq)` only for sequence-bearing agreement messages
    /// (PRE-PREPARE, PREPARE, COMMIT, CATCH-UP-REPLY); `None` for all other
    /// kinds and for frames too short to carry the claimed fields. A
    /// Byzantine header can only misroute its own frame to a different
    /// pipeline core; verification and full decoding still gate acceptance.
    pub fn peek_wire_seq(wire: &[u8]) -> Option<SeqNum> {
        let body_len = u32::from_le_bytes(wire.get(..4)?.try_into().ok()?) as usize;
        let body = wire.get(4..4 + body_len)?;
        let seq_at = |off: usize| -> Option<SeqNum> {
            Some(u64::from_le_bytes(body.get(off..off + 8)?.try_into().ok()?))
        };
        match body.first()? {
            // PRE-PREPARE / PREPARE / COMMIT: tag, view u64, seq u64.
            1..=3 => seq_at(9),
            // CATCH-UP-REPLY: tag, seq u64.
            9 => seq_at(1),
            _ => None,
        }
    }

    /// Verifies the MAC for the holder of `keys` and decodes the body.
    ///
    /// # Errors
    ///
    /// `None`-like error via `Result`: a codec error for malformed bodies;
    /// verification failure is reported as `Ok(None)` so callers can count
    /// it as Byzantine behaviour rather than a local fault.
    pub fn verify_and_decode(&self, keys: &KeyTable) -> Result<Option<Message>, CodecError> {
        if !keys.verify(&self.body, &self.auth) {
            return Ok(None);
        }
        Ok(Some(Message::decode(&self.body)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(c: u32, ts: u64) -> Request {
        Request {
            client: c,
            timestamp: ts,
            payload: vec![1, 2, 3],
        }
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        let d = Digest::of(b"x");
        let msgs = vec![
            Message::Request(req(10, 1)),
            Message::PrePrepare {
                view: 1,
                seq: 2,
                digest: d,
                batch: vec![req(10, 1), req(11, 2)],
            },
            Message::Prepare {
                view: 1,
                seq: 2,
                digest: d,
                replica: 3,
            },
            Message::Commit {
                view: 1,
                seq: 2,
                digest: d,
                replica: 3,
            },
            Message::Reply {
                view: 1,
                client: 10,
                timestamp: 5,
                replica: 2,
                result: b"ok".to_vec(),
            },
            Message::Checkpoint {
                seq: 100,
                state_digest: d,
                replica: 1,
                store_rkey: 77,
                store_len: 4096,
                store_epoch: 3,
            },
            Message::ViewChange {
                new_view: 2,
                last_stable: 100,
                checkpoint_digest: d,
                prepared: vec![PreparedProof {
                    seq: 101,
                    view: 1,
                    digest: d,
                    batch: vec![req(10, 9)],
                }],
                replica: 0,
            },
            Message::NewView {
                view: 2,
                pre_prepares: vec![(101, d, vec![req(10, 9)])],
                replica: 2,
            },
            Message::CatchUpRequest {
                from_seq: 7,
                replica: 3,
            },
            Message::CatchUpReply {
                seq: 7,
                view: 1,
                digest: d,
                batch: vec![req(10, 4), req(11, 2)],
                replica: 0,
            },
            Message::StateRequest {
                seq: 64,
                chunk: MANIFEST_CHUNK,
                replica: 2,
                epoch: 1,
            },
            Message::StateChunk {
                seq: 64,
                chunk: 3,
                data: vec![5; 97],
                replica: 1,
            },
            Message::SlotGrant {
                view: 2,
                replica: 3,
                rkey: 91,
                slot_size: 4096,
                slots: 128,
            },
            Message::LeaseQuery { client: 9 },
            Message::LeaseGrant {
                replica: 1,
                rkey: 77,
                len: 163_856,
                epoch: 4,
            },
        ];
        for m in msgs {
            let enc = m.encode();
            let dec = Message::decode(&enc).unwrap_or_else(|e| panic!("{}: {e}", m.kind()));
            assert_eq!(dec, m, "{}", m.kind());
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            Message::decode(&[200]),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn truncated_message_rejected() {
        let enc = Message::Prepare {
            view: 1,
            seq: 2,
            digest: Digest::ZERO,
            replica: 3,
        }
        .encode();
        assert!(Message::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn batch_digest_is_order_sensitive() {
        let a = req(1, 1);
        let b = req(2, 2);
        assert_ne!(batch_digest(&[a.clone(), b.clone()]), batch_digest(&[b, a]));
    }

    #[test]
    fn signed_message_roundtrip_and_verify() {
        let keys0 = KeyTable::new(0, b"secret".to_vec());
        let keys1 = KeyTable::new(1, b"secret".to_vec());
        let msg = Message::Prepare {
            view: 0,
            seq: 1,
            digest: Digest::of(b"batch"),
            replica: 0,
        };
        let signed = SignedMessage::create(&msg, &keys0, &[1, 2, 3]);
        let wire = signed.encode();
        let decoded = SignedMessage::decode(&wire).unwrap();
        assert_eq!(decoded, signed);
        assert_eq!(decoded.verify_and_decode(&keys1).unwrap(), Some(msg));

        // Tampered body fails verification (not a codec error).
        let mut tampered = decoded.clone();
        tampered.body[0] ^= 0xFF;
        assert_eq!(tampered.verify_and_decode(&keys1).unwrap(), None);
    }

    #[test]
    fn state_transfer_messages_route_to_lane_zero() {
        let keys = KeyTable::new(1, b"secret".to_vec());
        for msg in [
            Message::StateRequest {
                seq: 640,
                chunk: 0,
                replica: 1,
                epoch: 0,
            },
            Message::StateChunk {
                seq: 640,
                chunk: 0,
                data: vec![1; 32],
                replica: 1,
            },
        ] {
            let wire = SignedMessage::create(&msg, &keys, &[0]).encode();
            assert_eq!(
                SignedMessage::peek_wire_seq(&wire),
                None,
                "{} must not demux onto an agreement lane",
                msg.kind()
            );
        }
    }

    #[test]
    fn request_digests_differ_by_field() {
        let base = req(1, 1);
        let mut other = base.clone();
        other.timestamp = 2;
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.client = 2;
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.payload = vec![9];
        assert_ne!(base.digest(), other.digest());
    }
}
