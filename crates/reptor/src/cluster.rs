//! Cluster harness: builds a complete replica group plus clients on the
//! simulated fabric. Used by tests, examples and the benchmark drivers.

use std::rc::Rc;

use simnet::{CpuModel, HostId, LatencyMatrix, Network, Simulator, TestBed};

use crate::client::Client;
use crate::config::ReptorConfig;
use crate::replica::Replica;
use crate::state::StateMachine;
use crate::transport::{SimTransport, Transport};

/// Shared secret for the MAC key domain (stands in for key distribution).
pub const DOMAIN_SECRET: &[u8] = b"reptor-simulated-domain";

/// A fully wired replica group with clients.
pub struct Cluster {
    /// The simulator driving everything.
    pub sim: Simulator,
    /// The fabric.
    pub net: Network,
    /// Replicas `0..n`.
    pub replicas: Vec<Replica>,
    /// Clients (node ids `n..n+c`).
    pub clients: Vec<Client>,
    /// The group configuration.
    pub cfg: ReptorConfig,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.replicas.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

impl Cluster {
    /// Builds a cluster over the direct [`SimTransport`]: each replica and
    /// each client gets its own 4-core host in a full mesh.
    pub fn sim_transport(
        cfg: ReptorConfig,
        num_clients: usize,
        seed: u64,
        mut service: impl FnMut() -> Box<dyn StateMachine>,
    ) -> Cluster {
        cfg.validate();
        let total = cfg.n + num_clients;
        let (sim, net, hosts) = TestBed::cluster(seed, total);
        let nodes: Vec<(u32, simnet::HostId)> = hosts
            .iter()
            .enumerate()
            .map(|(i, &h)| (i as u32, h))
            .collect();
        let transports = SimTransport::build_group(&net, &nodes);

        let replicas: Vec<Replica> = (0..cfg.n)
            .map(|i| {
                Replica::new(
                    i as u32,
                    cfg.clone(),
                    DOMAIN_SECRET,
                    Rc::new(transports[i].clone()) as Rc<dyn Transport>,
                    &net,
                    hosts[i],
                    service(),
                )
            })
            .collect();
        let clients: Vec<Client> = (0..num_clients)
            .map(|i| {
                let id = (cfg.n + i) as u32;
                Client::new(
                    id,
                    cfg.clone(),
                    DOMAIN_SECRET,
                    Rc::new(transports[cfg.n + i].clone()) as Rc<dyn Transport>,
                )
            })
            .collect();
        Cluster {
            sim,
            net,
            replicas,
            clients,
            cfg,
        }
    }

    /// Builds a geo-distributed cluster: replicas are spread round-robin
    /// across the topology's regions (one host each), and `num_clients`
    /// clients share `num_client_hosts` hosts — the shape needed to drive
    /// thousand-client scenarios without a thousand hosts. The view-change
    /// timeout is raised to the topology's [`LatencyMatrix::suggested_timeout`]
    /// if the configured one is too aggressive for the WAN RTTs.
    pub fn sim_transport_geo(
        mut cfg: ReptorConfig,
        num_clients: usize,
        num_client_hosts: usize,
        seed: u64,
        topology: &LatencyMatrix,
        mut service: impl FnMut() -> Box<dyn StateMachine>,
    ) -> Cluster {
        cfg.view_change_timeout = cfg.view_change_timeout.max(topology.suggested_timeout());
        cfg.validate();
        let num_client_hosts = num_client_hosts.clamp(1, num_clients.max(1));
        let sim = Simulator::new(seed);
        let net = Network::new();
        let assignment = topology.round_robin(cfg.n + num_client_hosts);
        let replica_hosts: Vec<HostId> = (0..cfg.n)
            .map(|i| {
                let region = topology.region_name(assignment[i]);
                net.add_host(format!("replica-{i}-{region}"), 4, CpuModel::xeon_v2())
            })
            .collect();
        let client_hosts: Vec<HostId> = (0..num_client_hosts)
            .map(|i| {
                let region = topology.region_name(assignment[cfg.n + i]);
                net.add_host(format!("clients-{i}-{region}"), 4, CpuModel::xeon_v2())
            })
            .collect();
        let all_hosts: Vec<HostId> = replica_hosts
            .iter()
            .chain(client_hosts.iter())
            .copied()
            .collect();
        topology.wire(&net, &all_hosts, &assignment);

        let nodes: Vec<(u32, HostId)> = (0..cfg.n)
            .map(|i| (i as u32, replica_hosts[i]))
            .chain(
                (0..num_clients).map(|i| ((cfg.n + i) as u32, client_hosts[i % num_client_hosts])),
            )
            .collect();
        let transports = SimTransport::build_group(&net, &nodes);

        let replicas: Vec<Replica> = (0..cfg.n)
            .map(|i| {
                Replica::new(
                    i as u32,
                    cfg.clone(),
                    DOMAIN_SECRET,
                    Rc::new(transports[i].clone()) as Rc<dyn Transport>,
                    &net,
                    replica_hosts[i],
                    service(),
                )
            })
            .collect();
        let clients: Vec<Client> = (0..num_clients)
            .map(|i| {
                let id = (cfg.n + i) as u32;
                Client::new(
                    id,
                    cfg.clone(),
                    DOMAIN_SECRET,
                    Rc::new(transports[cfg.n + i].clone()) as Rc<dyn Transport>,
                )
            })
            .collect();
        Cluster {
            sim,
            net,
            replicas,
            clients,
            cfg,
        }
    }

    /// The cluster-wide metrics registry (shared by every layer on the
    /// fabric: hosts, transports, and replicas).
    pub fn metrics(&self) -> simnet::Metrics {
        self.net.metrics()
    }

    /// A deterministic snapshot of every counter, gauge, histogram and
    /// trace event accumulated so far. Refreshes the `sim.events_*` and
    /// `pool.*` gauges from the event core and buffer pool first, so the
    /// snapshot always carries current simulator-health readings.
    pub fn metrics_snapshot(&self) -> simnet::MetricsSnapshot {
        self.net.publish_sim_gauges(&self.sim);
        self.net.metrics().snapshot()
    }

    /// Runs until the simulator is idle.
    pub fn settle(&mut self) {
        self.sim.run_until_idle();
    }

    /// Runs until every client has `want` completions or `max_steps`
    /// events elapse. Returns true on success.
    pub fn run_until_completed(&mut self, want: u64, max_events: u64) -> bool {
        let start = self.sim.executed_events();
        loop {
            if self.clients.iter().all(|c| c.stats().completed >= want) {
                return true;
            }
            if !self.sim.step() {
                return false;
            }
            if self.sim.executed_events() - start > max_events {
                return false;
            }
        }
    }

    /// Asserts PBFT safety: no two replicas executed different batches at
    /// the same sequence number, and each replica's history is a prefix of
    /// the longest one.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violation, if any.
    pub fn assert_safety(&self) {
        let logs: Vec<Vec<(u64, bft_crypto::Digest)>> =
            self.replicas.iter().map(Replica::executed_log).collect();
        for (i, a) in logs.iter().enumerate() {
            for (j, b) in logs.iter().enumerate().skip(i + 1) {
                for (seq_a, dig_a) in a {
                    for (seq_b, dig_b) in b {
                        if seq_a == seq_b {
                            assert_eq!(
                                dig_a, dig_b,
                                "replicas {i} and {j} executed different batches at seq {seq_a}"
                            );
                        }
                    }
                }
            }
        }
    }
}
