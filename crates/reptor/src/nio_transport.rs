//! The NIO-style TCP transport: Reptor's baseline comm stack.
//!
//! One selector thread per node multiplexes a full mesh of non-blocking
//! TCP streams (exactly how Reptor/UpRight use the Java NIO selector for
//! replica communication, paper §I/§III). Messages are framed with a 4-byte
//! little-endian length prefix; the first frame on every stream is a hello
//! carrying the sender's node id.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use simnet::{Addr, CoreId, HostId, Network, Simulator};
use simnet_socket::{
    KeyId, Ops, ReadOutcome, Selector, TcpListener, TcpModel, TcpStream, NIO_SELECT_NS,
};

use crate::transport::{DeliveryFn, NodeId, Transport};

/// Base port for NIO transport listeners.
const NIO_PORT_BASE: u32 = 900;

struct PeerConn {
    stream: TcpStream,
    key: KeyId,
    /// Framed bytes not yet accepted by the socket.
    outq: VecDeque<u8>,
    /// Partial inbound frame bytes.
    inbuf: Vec<u8>,
    /// Peer id once the hello frame arrived (inbound connections).
    peer: Option<NodeId>,
}

struct NioInner {
    node: NodeId,
    core: CoreId,
    net: Network,
    model: TcpModel,
    selector: Selector,
    listener: TcpListener,
    listener_key: KeyId,
    conns: Vec<PeerConn>,
    by_node: HashMap<NodeId, usize>,
    delivery: Option<DeliveryFn>,
    msgs_sent: u64,
    msgs_delivered: u64,
}

/// A full-mesh, selector-driven TCP transport endpoint.
#[derive(Clone)]
pub struct NioTransport {
    inner: Rc<RefCell<NioInner>>,
}

impl fmt::Debug for NioTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("NioTransport")
            .field("node", &inner.node)
            .field("conns", &inner.conns.len())
            .field("sent", &inner.msgs_sent)
            .field("delivered", &inner.msgs_delivered)
            .finish()
    }
}

fn frame(msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + msg.len());
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

impl NioTransport {
    /// Builds a fully meshed group: every endpoint listens, lower-id nodes
    /// are dialled by higher-id nodes, and hello frames identify peers.
    /// Run the simulator (or start sending) to let connections complete.
    pub fn build_group(
        sim: &mut Simulator,
        net: &Network,
        nodes: &[(NodeId, HostId, CoreId)],
        model: TcpModel,
    ) -> Vec<NioTransport> {
        let transports: Vec<NioTransport> = nodes
            .iter()
            .map(|&(node, host, core)| {
                let selector = Selector::new(net, host, core, NIO_SELECT_NS);
                let listener =
                    TcpListener::bind(net, host, NIO_PORT_BASE + node, core, model.clone())
                        .expect("transport port free");
                NioTransport {
                    inner: Rc::new(RefCell::new(NioInner {
                        node,
                        core,
                        net: net.clone(),
                        model: model.clone(),
                        selector,
                        listener,
                        listener_key: KeyId(u64::MAX),
                        conns: Vec::new(),
                        by_node: HashMap::new(),
                        delivery: None,
                        msgs_sent: 0,
                        msgs_delivered: 0,
                    })),
                }
            })
            .collect();
        // Register listeners and start the reactors.
        for t in &transports {
            let key = {
                let inner = t.inner.borrow();
                inner.listener.register(sim, &inner.selector)
            };
            t.inner.borrow_mut().listener_key = key;
            t.pump(sim);
        }
        // Dial: node at index i connects to every earlier node.
        for (idx, &(_node, host, _core)) in nodes.iter().enumerate() {
            for &(peer, peer_host, _pcore) in &nodes[..idx] {
                let t = &transports[idx];
                let remote = Addr::new(peer_host, NIO_PORT_BASE + peer);
                let (stream, key) = {
                    let inner = t.inner.borrow();
                    let stream = TcpStream::connect(
                        sim,
                        &inner.net,
                        host,
                        inner.core,
                        inner.model.clone(),
                        remote,
                    );
                    let key = stream.register(sim, &inner.selector, Ops::CONNECT | Ops::READ);
                    (stream, key)
                };
                let mut inner = t.inner.borrow_mut();
                let slot = inner.conns.len();
                inner.conns.push(PeerConn {
                    stream,
                    key,
                    outq: VecDeque::new(),
                    inbuf: Vec::new(),
                    peer: Some(peer),
                });
                inner.by_node.insert(peer, slot);
            }
        }
        transports
    }

    /// Messages delivered to this endpoint.
    pub fn delivered_count(&self) -> u64 {
        self.inner.borrow().msgs_delivered
    }

    /// Select calls performed by this endpoint's selector.
    pub fn selects_performed(&self) -> u64 {
        self.inner.borrow().selector.selects_performed()
    }

    /// The shared metrics registry of the fabric this endpoint runs on.
    pub fn metrics(&self) -> simnet::Metrics {
        self.inner.borrow().net.metrics()
    }

    /// The reactor: parks a select and handles whatever becomes ready.
    fn pump(&self, sim: &mut Simulator) {
        let selector = self.inner.borrow().selector.clone();
        let t = self.clone();
        selector.select(sim, move |sim, ready| {
            for ev in ready {
                t.handle_event(sim, ev.key, ev.ready);
            }
            t.pump(sim);
        });
    }

    fn handle_event(&self, sim: &mut Simulator, key: KeyId, ready: Ops) {
        let listener_key = self.inner.borrow().listener_key;
        if key == listener_key {
            if ready.contains(Ops::ACCEPT) {
                self.handle_accept(sim);
            }
            return;
        }
        let slot = {
            let inner = self.inner.borrow();
            inner.conns.iter().position(|c| c.key == key)
        };
        let Some(slot) = slot else { return };
        if ready.contains(Ops::CONNECT) {
            self.handle_connected(sim, slot);
        }
        if ready.contains(Ops::READ) {
            self.handle_readable(sim, slot);
        }
        if ready.contains(Ops::WRITE) {
            self.flush(sim, slot);
        }
    }

    fn handle_accept(&self, sim: &mut Simulator) {
        loop {
            let accepted = {
                let inner = self.inner.borrow();
                inner.listener.accept(sim)
            };
            let Some(stream) = accepted else { break };
            let key = {
                let inner = self.inner.borrow();
                stream.register(sim, &inner.selector, Ops::READ)
            };
            let mut inner = self.inner.borrow_mut();
            inner.conns.push(PeerConn {
                stream,
                key,
                outq: VecDeque::new(),
                inbuf: Vec::new(),
                peer: None,
            });
        }
    }

    fn handle_connected(&self, sim: &mut Simulator, slot: usize) {
        let (stream, key, node) = {
            let inner = self.inner.borrow();
            let c = &inner.conns[slot];
            (c.stream.clone(), c.key, inner.node)
        };
        if !stream.finish_connect(sim) {
            return;
        }
        {
            let inner = self.inner.borrow();
            inner.selector.set_interest(sim, key, Ops::READ);
        }
        // Send the hello frame identifying us.
        let hello = frame(&node.to_le_bytes());
        self.enqueue(sim, slot, hello);
    }

    fn handle_readable(&self, sim: &mut Simulator, slot: usize) {
        loop {
            let outcome = {
                let inner = self.inner.borrow();
                inner.conns[slot].stream.read(sim, 1 << 20)
            };
            match outcome {
                Ok(ReadOutcome::Data(bytes)) => {
                    self.inner.borrow_mut().conns[slot].inbuf.extend(bytes);
                    self.parse_frames(sim, slot);
                }
                Ok(ReadOutcome::WouldBlock) | Ok(ReadOutcome::Eof) | Err(_) => break,
            }
        }
    }

    fn parse_frames(&self, sim: &mut Simulator, slot: usize) {
        loop {
            let parsed = {
                let mut inner = self.inner.borrow_mut();
                let c = &mut inner.conns[slot];
                if c.inbuf.len() < 4 {
                    None
                } else {
                    let len =
                        u32::from_le_bytes(c.inbuf[..4].try_into().expect("4 bytes")) as usize;
                    if c.inbuf.len() < 4 + len {
                        None
                    } else {
                        let body: Vec<u8> = c.inbuf[4..4 + len].to_vec();
                        c.inbuf.drain(..4 + len);
                        Some(body)
                    }
                }
            };
            let Some(body) = parsed else { break };
            self.handle_frame(sim, slot, body);
        }
    }

    fn handle_frame(&self, sim: &mut Simulator, slot: usize, body: Vec<u8>) {
        let (peer, delivery) = {
            let mut inner = self.inner.borrow_mut();
            match inner.conns[slot].peer {
                Some(p) => {
                    inner.msgs_delivered += 1;
                    (p, inner.delivery.clone())
                }
                None => {
                    // First frame: the hello.
                    if body.len() == 4 {
                        let peer = u32::from_le_bytes(body.try_into().expect("4 bytes"));
                        inner.conns[slot].peer = Some(peer);
                        inner.by_node.insert(peer, slot);
                    }
                    return;
                }
            }
        };
        if let Some(cb) = delivery {
            cb(sim, peer, body);
        }
    }

    fn enqueue(&self, sim: &mut Simulator, slot: usize, framed: Vec<u8>) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.conns[slot].outq.extend(framed);
        }
        self.flush(sim, slot);
    }

    fn flush(&self, sim: &mut Simulator, slot: usize) {
        loop {
            let (stream, chunk) = {
                let inner = self.inner.borrow();
                let c = &inner.conns[slot];
                if c.outq.is_empty() || !c.stream.is_established() {
                    break;
                }
                let take = c.outq.len().min(64 * 1024);
                let chunk: Vec<u8> = c.outq.iter().copied().take(take).collect();
                (c.stream.clone(), chunk)
            };
            match stream.write(sim, &chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    let mut inner = self.inner.borrow_mut();
                    inner.conns[slot].outq.drain(..n);
                }
            }
        }
        // Track WRITE interest: only while there is something to flush.
        let inner = self.inner.borrow();
        let c = &inner.conns[slot];
        let connected = c.stream.is_established();
        let interest = if !connected {
            Ops::READ | Ops::CONNECT
        } else if c.outq.is_empty() {
            Ops::READ
        } else {
            Ops::READ | Ops::WRITE
        };
        inner.selector.set_interest(sim, c.key, interest);
    }
}

impl Transport for NioTransport {
    fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    fn send(&self, sim: &mut Simulator, to: NodeId, msg: Vec<u8>) {
        let slot = {
            let mut inner = self.inner.borrow_mut();
            inner.msgs_sent += 1;
            inner.by_node.get(&to).copied()
        };
        let Some(slot) = slot else {
            return; // no connection to that peer (yet): drop
        };
        self.enqueue(sim, slot, frame(&msg));
    }

    fn set_delivery(&self, f: DeliveryFn) {
        self.inner.borrow_mut().delivery = Some(f);
    }
}
