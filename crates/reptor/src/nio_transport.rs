//! The NIO-style TCP transport: Reptor's baseline comm stack.
//!
//! One selector thread per node multiplexes a full mesh of non-blocking
//! TCP streams (exactly how Reptor/UpRight use the Java NIO selector for
//! replica communication, paper §I/§III). Messages are framed with a 4-byte
//! little-endian length prefix; the first frame on every stream is a hello
//! carrying the sender's node id.
//!
//! Failure recovery mirrors [`crate::rubin_transport`]: when a stream
//! breaks (retransmission-budget exhaustion, peer crash), the side that
//! originally dialed — the higher node id — re-dials with exponential
//! backoff while the other side parks outgoing frames until the
//! replacement connection's hello arrives. Whole frames that were never
//! written to the socket carry over; a frame already partially written
//! when the stream died is dropped (re-sending its tail would desync the
//! length-prefix framing), which the BFT layer above tolerates.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use simnet::{Addr, CoreId, HostId, Nanos, Network, Simulator};
use simnet_socket::{
    KeyId, Ops, ReadOutcome, Selector, TcpListener, TcpModel, TcpStream, NIO_SELECT_NS,
};

use crate::transport::{DeliveryFn, NodeId, Transport};

/// Base port for NIO transport listeners.
const NIO_PORT_BASE: u32 = 900;

/// First re-dial delay after a stream failure; doubles per consecutive
/// failed attempt.
const RECONNECT_BASE: Nanos = Nanos::from_millis(2);

/// Cap on the backoff doubling: delay = base << min(attempts, CAP_SHIFT).
const RECONNECT_CAP_SHIFT: u32 = 5;

/// Maximum frames held for a peer whose stream is down or still
/// connecting. Large enough to ride over a reconnect round-trip, small
/// enough that a long outage cannot grow unbounded queues at healthy
/// peers — a revived replica recovers truncated history through
/// checkpoint state transfer instead of replay.
const PEN_CAP: usize = 16;

struct PeerConn {
    stream: TcpStream,
    key: KeyId,
    /// Whole frames not yet fully accepted by the socket.
    outq: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written to the socket.
    front_written: usize,
    /// Partial inbound frame bytes.
    inbuf: Vec<u8>,
    /// Peer id once the hello frame arrived (inbound connections).
    peer: Option<NodeId>,
    /// Stream failed; slot is retired (its selector key is cancelled) but
    /// kept so `by_node` indices stay stable and its `outq` can carry over.
    dead: bool,
    /// This stream is a reconnect attempt (not an initial mesh dial).
    redial: bool,
}

struct NioInner {
    node: NodeId,
    core: CoreId,
    net: Network,
    model: TcpModel,
    selector: Selector,
    listener: TcpListener,
    listener_key: KeyId,
    conns: Vec<PeerConn>,
    by_node: HashMap<NodeId, usize>,
    /// Host of every group member, for re-dialing after a failure.
    directory: HashMap<NodeId, HostId>,
    /// This endpoint's own host (dial source address).
    host: HostId,
    /// Consecutive failed re-dial attempts per peer (drives the backoff).
    redial_attempts: HashMap<NodeId, u32>,
    delivery: Option<DeliveryFn>,
    msgs_sent: u64,
    msgs_delivered: u64,
    reconnect_attempts: u64,
    reconnects_completed: u64,
}

/// A full-mesh, selector-driven TCP transport endpoint.
#[derive(Clone)]
pub struct NioTransport {
    inner: Rc<RefCell<NioInner>>,
}

impl fmt::Debug for NioTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("NioTransport")
            .field("node", &inner.node)
            .field("conns", &inner.conns.len())
            .field("sent", &inner.msgs_sent)
            .field("delivered", &inner.msgs_delivered)
            .finish()
    }
}

fn frame(msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + msg.len());
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

impl NioTransport {
    /// Builds a fully meshed group: every endpoint listens, lower-id nodes
    /// are dialled by higher-id nodes, and hello frames identify peers.
    /// Run the simulator (or start sending) to let connections complete.
    pub fn build_group(
        sim: &mut Simulator,
        net: &Network,
        nodes: &[(NodeId, HostId, CoreId)],
        model: TcpModel,
    ) -> Vec<NioTransport> {
        let transports: Vec<NioTransport> = nodes
            .iter()
            .map(|&(node, host, core)| {
                let selector = Selector::new(net, host, core, NIO_SELECT_NS);
                let listener =
                    TcpListener::bind(net, host, NIO_PORT_BASE + node, core, model.clone())
                        .expect("transport port free");
                NioTransport {
                    inner: Rc::new(RefCell::new(NioInner {
                        node,
                        core,
                        net: net.clone(),
                        model: model.clone(),
                        selector,
                        listener,
                        listener_key: KeyId(u64::MAX),
                        conns: Vec::new(),
                        by_node: HashMap::new(),
                        directory: nodes.iter().map(|&(n, h, _)| (n, h)).collect(),
                        host,
                        redial_attempts: HashMap::new(),
                        delivery: None,
                        msgs_sent: 0,
                        msgs_delivered: 0,
                        reconnect_attempts: 0,
                        reconnects_completed: 0,
                    })),
                }
            })
            .collect();
        // Register listeners and start the reactors.
        for t in &transports {
            let key = {
                let inner = t.inner.borrow();
                inner.listener.register(sim, &inner.selector)
            };
            t.inner.borrow_mut().listener_key = key;
            t.pump(sim);
        }
        // Dial: node at index i connects to every earlier node.
        for (idx, &(_node, host, _core)) in nodes.iter().enumerate() {
            for &(peer, peer_host, _pcore) in &nodes[..idx] {
                let t = &transports[idx];
                let remote = Addr::new(peer_host, NIO_PORT_BASE + peer);
                let (stream, key) = {
                    let inner = t.inner.borrow();
                    let stream = TcpStream::connect(
                        sim,
                        &inner.net,
                        host,
                        inner.core,
                        inner.model.clone(),
                        remote,
                    );
                    let key = stream.register(sim, &inner.selector, Ops::CONNECT | Ops::READ);
                    (stream, key)
                };
                let mut inner = t.inner.borrow_mut();
                let slot = inner.conns.len();
                inner.conns.push(PeerConn {
                    stream,
                    key,
                    outq: VecDeque::new(),
                    front_written: 0,
                    inbuf: Vec::new(),
                    peer: Some(peer),
                    dead: false,
                    redial: false,
                });
                inner.by_node.insert(peer, slot);
            }
        }
        transports
    }

    /// Messages delivered to this endpoint.
    pub fn delivered_count(&self) -> u64 {
        self.inner.borrow().msgs_delivered
    }

    /// Re-dial attempts made after stream failures.
    pub fn reconnect_attempts(&self) -> u64 {
        self.inner.borrow().reconnect_attempts
    }

    /// Re-dials that reached establishment.
    pub fn reconnects_completed(&self) -> u64 {
        self.inner.borrow().reconnects_completed
    }

    /// Select calls performed by this endpoint's selector.
    pub fn selects_performed(&self) -> u64 {
        self.inner.borrow().selector.selects_performed()
    }

    /// The shared metrics registry of the fabric this endpoint runs on.
    pub fn metrics(&self) -> simnet::Metrics {
        self.inner.borrow().net.metrics()
    }

    /// The reactor: parks a select and handles whatever becomes ready.
    fn pump(&self, sim: &mut Simulator) {
        let selector = self.inner.borrow().selector.clone();
        let t = self.clone();
        selector.select(sim, move |sim, ready| {
            for ev in ready {
                t.handle_event(sim, ev.key, ev.ready);
            }
            t.pump(sim);
        });
    }

    fn handle_event(&self, sim: &mut Simulator, key: KeyId, ready: Ops) {
        let listener_key = self.inner.borrow().listener_key;
        if key == listener_key {
            if ready.contains(Ops::ACCEPT) {
                self.handle_accept(sim);
            }
            return;
        }
        let slot = {
            let inner = self.inner.borrow();
            inner.conns.iter().position(|c| c.key == key)
        };
        let Some(slot) = slot else { return };
        if ready.contains(Ops::CONNECT) {
            self.handle_connected(sim, slot);
        }
        if ready.contains(Ops::READ) {
            self.handle_readable(sim, slot);
        }
        if ready.contains(Ops::WRITE) {
            self.flush(sim, slot);
        }
    }

    fn handle_accept(&self, sim: &mut Simulator) {
        loop {
            let accepted = {
                let inner = self.inner.borrow();
                inner.listener.accept(sim)
            };
            let Some(stream) = accepted else { break };
            let key = {
                let inner = self.inner.borrow();
                stream.register(sim, &inner.selector, Ops::READ)
            };
            let mut inner = self.inner.borrow_mut();
            inner.conns.push(PeerConn {
                stream,
                key,
                outq: VecDeque::new(),
                front_written: 0,
                inbuf: Vec::new(),
                peer: None,
                dead: false,
                redial: false,
            });
        }
    }

    fn handle_connected(&self, sim: &mut Simulator, slot: usize) {
        let (stream, key, node, redial) = {
            let inner = self.inner.borrow();
            let c = &inner.conns[slot];
            (c.stream.clone(), c.key, inner.node, c.redial)
        };
        if !stream.finish_connect(sim) {
            // A consumed connect-ready without establishment means the dial
            // failed (SYN retransmission budget exhausted — e.g. the peer's
            // host is down). Initial mesh dials in a healthy fabric never
            // hit this; a re-dial backs off and tries again.
            if redial && !stream.is_established() {
                self.on_conn_down(sim, slot);
            }
            return;
        }
        // A completed re-dial resets the peer's backoff.
        let metrics = {
            let mut inner = self.inner.borrow_mut();
            if redial {
                let peer = inner.conns[slot].peer.expect("re-dials know their peer");
                inner.redial_attempts.remove(&peer);
                inner.reconnects_completed += 1;
                Some((inner.net.metrics(), inner.node))
            } else {
                None
            }
        };
        if let Some((m, n)) = metrics {
            m.incr(&format!("nio_transport.{n}.reconnects_completed"));
            m.trace(
                sim.now(),
                "transport",
                format!("nio reconnect up slot={slot}"),
            );
        }
        {
            let inner = self.inner.borrow();
            inner.selector.set_interest(sim, key, Ops::READ);
        }
        // Send the hello frame identifying us. It must be the first frame
        // on the stream, ahead of any carried-over output.
        {
            let mut inner = self.inner.borrow_mut();
            debug_assert_eq!(inner.conns[slot].front_written, 0);
            inner.conns[slot]
                .outq
                .push_front(frame(&node.to_le_bytes()));
        }
        self.flush(sim, slot);
    }

    fn handle_readable(&self, sim: &mut Simulator, slot: usize) {
        loop {
            let outcome = {
                let inner = self.inner.borrow();
                inner.conns[slot].stream.read(sim, 1 << 20)
            };
            match outcome {
                Ok(ReadOutcome::Data(bytes)) => {
                    self.inner.borrow_mut().conns[slot].inbuf.extend(bytes);
                    self.parse_frames(sim, slot);
                }
                Ok(ReadOutcome::WouldBlock) => break,
                Ok(ReadOutcome::Eof) | Err(_) => {
                    self.on_conn_down(sim, slot);
                    break;
                }
            }
        }
    }

    fn parse_frames(&self, sim: &mut Simulator, slot: usize) {
        loop {
            let parsed = {
                let mut inner = self.inner.borrow_mut();
                let c = &mut inner.conns[slot];
                if c.inbuf.len() < 4 {
                    None
                } else {
                    let len =
                        u32::from_le_bytes(c.inbuf[..4].try_into().expect("4 bytes")) as usize;
                    if c.inbuf.len() < 4 + len {
                        None
                    } else {
                        let body: Vec<u8> = c.inbuf[4..4 + len].to_vec();
                        c.inbuf.drain(..4 + len);
                        Some(body)
                    }
                }
            };
            let Some(body) = parsed else { break };
            self.handle_frame(sim, slot, body);
        }
    }

    fn handle_frame(&self, sim: &mut Simulator, slot: usize, body: Vec<u8>) {
        let (peer, delivery) = {
            let mut inner = self.inner.borrow_mut();
            match inner.conns[slot].peer {
                Some(p) => {
                    inner.msgs_delivered += 1;
                    (p, inner.delivery.clone())
                }
                None => {
                    // First frame: the hello.
                    if body.len() == 4 {
                        let peer = u32::from_le_bytes(body.try_into().expect("4 bytes"));
                        inner.conns[slot].peer = Some(peer);
                        // A hello from an already-known peer means it
                        // reconnected: retire the stale stream and carry
                        // its queued (whole, unwritten) frames over.
                        let mut retired = None;
                        if let Some(&old) = inner.by_node.get(&peer) {
                            if old != slot {
                                let mut outq = std::mem::take(&mut inner.conns[old].outq);
                                if inner.conns[old].front_written > 0 {
                                    // The front frame went out partially on
                                    // the dead stream; its tail would desync
                                    // the framing. Drop it.
                                    outq.pop_front();
                                }
                                inner.conns[old].front_written = 0;
                                inner.conns[old].dead = true;
                                let old_key = inner.conns[old].key;
                                inner.selector.cancel(old_key);
                                inner.conns[slot].outq = outq;
                                retired = Some(inner.conns[old].stream.clone());
                            }
                        }
                        inner.by_node.insert(peer, slot);
                        drop(inner);
                        if let Some(s) = retired {
                            // Unbind the stale socket so anything still
                            // addressed to it fails fast instead of being
                            // acked into a buffer nobody drains.
                            s.close(sim);
                        }
                        // The carried-over queue may have pending frames.
                        self.flush(sim, slot);
                    }
                    return;
                }
            }
        };
        if let Some(cb) = delivery {
            cb(sim, peer, body);
        }
    }

    /// Retires a failed stream and, if this endpoint is the dialing side
    /// for that peer (higher node id, mirroring
    /// [`build_group`](NioTransport::build_group)), schedules a re-dial
    /// with exponential backoff. The lower-id side keeps the dead slot as
    /// a holding pen for queued frames until the peer re-dials.
    fn on_conn_down(&self, sim: &mut Simulator, slot: usize) {
        let (stream, peer, node, metrics) = {
            let mut inner = self.inner.borrow_mut();
            if inner.conns[slot].dead {
                return;
            }
            inner.conns[slot].dead = true;
            if inner.conns[slot].front_written > 0 {
                // A partially-written frame cannot be resumed on a new
                // stream; drop it so the carried queue stays frame-aligned.
                inner.conns[slot].outq.pop_front();
                inner.conns[slot].front_written = 0;
            }
            // The slot becomes a holding pen: shed everything but the
            // newest PEN_CAP frames now, so a long outage hands the
            // replacement stream recent traffic rather than stale history
            // (recovered by catch-up/state transfer instead).
            let shed = inner.conns[slot].outq.len().saturating_sub(PEN_CAP);
            inner.conns[slot].outq.drain(..shed);
            if shed > 0 {
                let node = inner.node;
                inner
                    .net
                    .metrics()
                    .incr_by(&format!("nio_transport.{node}.pen_dropped"), shed as u64);
            }
            let key = inner.conns[slot].key;
            inner.selector.cancel(key);
            (
                inner.conns[slot].stream.clone(),
                inner.conns[slot].peer,
                inner.node,
                inner.net.metrics(),
            )
        };
        // Close the socket so its port unbinds: a peer that still thinks
        // this stream is alive must see its segments go unanswered (RTO
        // exhaustion -> EOF) instead of having them silently buffered and
        // acked by a retired socket nobody reads.
        stream.close(sim);
        metrics.incr(&format!("nio_transport.{node}.conns_down"));
        metrics.trace(
            sim.now(),
            "transport",
            format!("nio stream down slot={slot} peer={peer:?}"),
        );
        let Some(peer) = peer else {
            return; // anonymous inbound stream that never said hello
        };
        if self.inner.borrow().by_node.get(&peer) != Some(&slot) {
            return; // a replacement is already wired in
        }
        if node > peer {
            self.schedule_redial(sim, peer);
        }
    }

    /// Schedules the next connection attempt towards `peer`, delayed by
    /// exponential backoff over the consecutive-failure count.
    fn schedule_redial(&self, sim: &mut Simulator, peer: NodeId) {
        let delay = {
            let inner = self.inner.borrow();
            let attempts = inner.redial_attempts.get(&peer).copied().unwrap_or(0);
            Nanos::from_nanos(RECONNECT_BASE.as_nanos() << attempts.min(RECONNECT_CAP_SHIFT))
        };
        let t = self.clone();
        sim.schedule_in(
            delay,
            Box::new(move |sim| {
                t.redial_fire(sim, peer);
            }),
        );
    }

    /// Opens a replacement stream towards `peer`, carrying over the dead
    /// slot's queued frames. A dial that cannot reach the peer fails on
    /// its own (SYN retransmission budget) and surfaces through
    /// [`handle_connected`](NioTransport::handle_connected), which backs
    /// off and re-dials.
    fn redial_fire(&self, sim: &mut Simulator, peer: NodeId) {
        let (net, host, core, model, remote, outq, node, metrics) = {
            let mut inner = self.inner.borrow_mut();
            if let Some(&slot) = inner.by_node.get(&peer) {
                if !inner.conns[slot].dead {
                    return; // already reconnected
                }
            }
            let Some(&peer_host) = inner.directory.get(&peer) else {
                return;
            };
            *inner.redial_attempts.entry(peer).or_insert(0) += 1;
            inner.reconnect_attempts += 1;
            let outq = match inner.by_node.get(&peer) {
                Some(&slot) => std::mem::take(&mut inner.conns[slot].outq),
                None => VecDeque::new(),
            };
            (
                inner.net.clone(),
                inner.host,
                inner.core,
                inner.model.clone(),
                Addr::new(peer_host, NIO_PORT_BASE + peer),
                outq,
                inner.node,
                inner.net.metrics(),
            )
        };
        metrics.incr(&format!("nio_transport.{node}.reconnect_attempts"));
        let stream = TcpStream::connect(sim, &net, host, core, model, remote);
        let key = {
            let inner = self.inner.borrow();
            stream.register(sim, &inner.selector, Ops::CONNECT | Ops::READ)
        };
        let mut inner = self.inner.borrow_mut();
        let slot = inner.conns.len();
        inner.conns.push(PeerConn {
            stream,
            key,
            outq,
            front_written: 0,
            inbuf: Vec::new(),
            peer: Some(peer),
            dead: false,
            redial: true,
        });
        inner.by_node.insert(peer, slot);
    }

    fn enqueue(&self, sim: &mut Simulator, slot: usize, framed: Vec<u8>) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.conns[slot].outq.push_back(framed);
            // A dead or still-connecting stream cannot drain; bound the
            // holding pen by shedding the oldest frame (never a partially
            // written one — writes only happen on established streams).
            // The survivors are the newest traffic — recent checkpoints
            // and votes — which is what a peer returning from a long
            // outage can still use; older history is recovered by
            // catch-up/state transfer, not by replay.
            let draining = !inner.conns[slot].dead && inner.conns[slot].stream.is_established();
            if !draining && inner.conns[slot].outq.len() > PEN_CAP {
                inner.conns[slot].outq.pop_front();
                let node = inner.node;
                inner
                    .net
                    .metrics()
                    .incr(&format!("nio_transport.{node}.pen_dropped"));
            }
        }
        self.flush(sim, slot);
    }

    fn flush(&self, sim: &mut Simulator, slot: usize) {
        if self.inner.borrow().conns[slot].dead {
            return;
        }
        loop {
            let (stream, chunk) = {
                let inner = self.inner.borrow();
                let c = &inner.conns[slot];
                if c.outq.is_empty() || !c.stream.is_established() {
                    break;
                }
                // Coalesce queued frames into one write of up to 64 KiB,
                // resuming mid-frame where the last write left off.
                let mut chunk = Vec::new();
                let mut skip = c.front_written;
                for f in &c.outq {
                    let take = (64 * 1024 - chunk.len()).min(f.len() - skip);
                    chunk.extend_from_slice(&f[skip..skip + take]);
                    skip = 0;
                    if chunk.len() == 64 * 1024 {
                        break;
                    }
                }
                (c.stream.clone(), chunk)
            };
            match stream.write(sim, &chunk) {
                Ok(0) | Err(_) => break,
                Ok(mut n) => {
                    let mut inner = self.inner.borrow_mut();
                    let c = &mut inner.conns[slot];
                    while n > 0 {
                        let remaining = c.outq[0].len() - c.front_written;
                        if n >= remaining {
                            n -= remaining;
                            c.outq.pop_front();
                            c.front_written = 0;
                        } else {
                            c.front_written += n;
                            n = 0;
                        }
                    }
                }
            }
        }
        // Track WRITE interest: only while there is something to flush.
        let inner = self.inner.borrow();
        let c = &inner.conns[slot];
        if c.dead {
            return; // key is cancelled; leave it alone
        }
        let connected = c.stream.is_established();
        let interest = if !connected {
            Ops::READ | Ops::CONNECT
        } else if c.outq.is_empty() {
            Ops::READ
        } else {
            Ops::READ | Ops::WRITE
        };
        inner.selector.set_interest(sim, c.key, interest);
    }
}

impl Transport for NioTransport {
    fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    fn send(&self, sim: &mut Simulator, to: NodeId, msg: Vec<u8>) {
        let slot = {
            let mut inner = self.inner.borrow_mut();
            inner.msgs_sent += 1;
            inner.by_node.get(&to).copied()
        };
        let Some(slot) = slot else {
            return; // no connection to that peer (yet): drop
        };
        self.enqueue(sim, slot, frame(&msg));
    }

    fn set_delivery(&self, f: DeliveryFn) {
        self.inner.borrow_mut().delivery = Some(f);
    }

    fn set_lane_delivery(&self, lanes: usize, f: crate::transport::LaneDeliveryFn) {
        // Same demux rule as the default, plus per-lane delivery counters
        // so benchmarks can see agreement traffic spreading over pipelines.
        let metrics = self.metrics();
        let node = self.node();
        self.set_delivery(Rc::new(move |sim, from, bytes| {
            let lane = crate::transport::wire_lane(&bytes, lanes);
            metrics.incr(&format!("nio_transport.{node}.lane{lane}_delivered"));
            f(sim, lane, from, bytes);
        }));
    }
}
