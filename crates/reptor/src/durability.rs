//! Durable checkpoint store: a CRC-framed write-ahead log plus a two-slot
//! generational snapshot, laid out on a [`SimDisk`].
//!
//! The volatile protocol state a replica loses on crash is rebuilt from
//! two on-disk structures:
//!
//! * **Snapshot slots.** Two fixed regions (A/B) each hold one encoded
//!   [`CheckpointPayload`](crate::state_transfer::CheckpointPayload)
//!   stamped with a monotonically increasing generation and a CRC.
//!   Writers alternate slots, so a crash mid-snapshot can at worst lose
//!   the *new* snapshot — the previous generation in the other slot stays
//!   intact. Recovery picks the highest-generation slot whose CRC checks.
//! * **Write-ahead log.** Every executed batch past the snapshot is
//!   appended as a length-prefixed, CRC-framed record. A torn tail (power
//!   loss mid-append) fails the length or CRC check of exactly the last
//!   frame, so a scan always yields a clean prefix of the appended
//!   sequence — never garbage frames, never a panic. Frames must also be
//!   seq-contiguous: a gap (e.g. a lost compaction write) ends the usable
//!   prefix the same way.
//!
//! Crash-consistency argument for compaction (snapshot at `s`, then WAL
//! rewritten keeping frames `> s`): the snapshot is written *first*. If
//! the snapshot write is lost but the WAL rewrite lands, recovery sees the
//! older snapshot plus a WAL starting past it — the contiguity check stops
//! replay at the gap and the missing middle is fetched from peers via the
//! ordinary state transfer. If the WAL rewrite tears instead, the CRC scan
//! truncates it and the fresh snapshot already covers everything dropped.
//! Either way the replica restarts from a consistent prefix, merely
//! fetching a larger delta; it never installs wrong state.

use bft_crypto::Digest;
use simnet::{Metrics, Nanos, SimDisk};

use crate::codec::{Reader, Writer};
use crate::messages::{Request, SeqNum};

/// Byte size of one snapshot slot. Payloads that don't fit are not
/// snapshotted (counted, and the WAL simply keeps growing until one fits
/// or peers resupply state).
pub const SLOT_BYTES: u64 = 256 * 1024;

/// Device offset where the WAL region starts (past both snapshot slots).
pub const WAL_BASE: u64 = 2 * SLOT_BYTES;

/// Upper bound on one WAL frame's payload, rejected during scans so a
/// corrupt length prefix can't allocate unbounded memory.
pub const MAX_FRAME: u32 = 1024 * 1024;

/// WAL frame header: payload length (u32) + payload CRC (u32).
const FRAME_HEADER: usize = 8;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One durable record: an executed batch with its agreement digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// The batch's sequence number.
    pub seq: SeqNum,
    /// The batch digest the agreement layer committed (re-recorded into
    /// the executor's safety witness on replay).
    pub digest: Digest,
    /// The client requests of the batch, in execution order.
    pub requests: Vec<Request>,
}

impl WalFrame {
    fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.seq);
        w.array(self.digest.as_bytes());
        w.u32(self.requests.len() as u32);
        for r in &self.requests {
            w.u32(r.client);
            w.u64(r.timestamp);
            w.bytes(&r.payload);
        }
        w.finish()
    }

    fn decode_payload(bytes: &[u8]) -> Option<WalFrame> {
        let mut r = Reader::new(bytes);
        let seq = r.u64().ok()?;
        let digest = Digest(r.array().ok()?);
        let n = r.u32().ok()?;
        let mut requests = Vec::new();
        for _ in 0..n {
            let client = r.u32().ok()?;
            let timestamp = r.u64().ok()?;
            let payload = r.bytes().ok()?;
            requests.push(Request {
                client,
                timestamp,
                payload,
            });
        }
        r.expect_end().ok()?;
        Some(WalFrame {
            seq,
            digest,
            requests,
        })
    }
}

/// Encodes one frame as it is laid out on disk:
/// `len u32 | crc32(payload) u32 | payload`.
pub fn encode_frame(frame: &WalFrame) -> Vec<u8> {
    let payload = frame.encode_payload();
    let mut w = Writer::new();
    w.u32(payload.len() as u32);
    w.u32(crc32(&payload));
    let mut out = w.finish();
    out.extend_from_slice(&payload);
    out
}

/// Result of scanning a WAL region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// The clean, seq-contiguous frame prefix.
    pub frames: Vec<WalFrame>,
    /// Byte length of that prefix on disk.
    pub valid_bytes: u64,
    /// Whether bytes past the prefix were discarded (torn or corrupt
    /// tail, or a seq gap).
    pub truncated: bool,
}

/// Scans raw WAL bytes into the longest decodable, seq-contiguous frame
/// prefix. Stops — without panicking — at the first frame whose length,
/// CRC, payload decode, or sequence contiguity check fails.
pub fn scan_frames(bytes: &[u8]) -> WalScan {
    let mut frames: Vec<WalFrame> = Vec::new();
    let mut pos = 0usize;
    loop {
        if bytes.len() - pos < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len == 0 || len > MAX_FRAME as usize || bytes.len() - pos - FRAME_HEADER < len {
            break;
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        let Some(frame) = WalFrame::decode_payload(payload) else {
            break;
        };
        if let Some(last) = frames.last() {
            if frame.seq != last.seq + 1 {
                break;
            }
        }
        pos += FRAME_HEADER + len;
        frames.push(frame);
    }
    WalScan {
        frames,
        valid_bytes: pos as u64,
        truncated: pos < bytes.len(),
    }
}

/// The durable state found on disk at restart.
#[derive(Debug)]
pub struct Recovered {
    /// Highest-generation valid snapshot, as `(seq, payload bytes)`.
    pub snapshot: Option<(SeqNum, Vec<u8>)>,
    /// Clean WAL prefix (all frames, including any at or below the
    /// snapshot seq — the caller skips those during replay).
    pub frames: Vec<WalFrame>,
    /// True if snapshot slot bytes were present but no slot validated
    /// (media corruption — the caller should count a peer-fetch
    /// fallback).
    pub snapshot_corrupt: bool,
}

/// A replica's persistence layer: two snapshot slots plus a WAL on one
/// [`SimDisk`], with a volatile index rebuilt by [`DurableStore::recover`]
/// after a crash.
#[derive(Debug)]
pub struct DurableStore {
    disk: SimDisk,
    wal_enabled: bool,
    snapshot_every: u64,
    /// Device offset of the next WAL append.
    wal_end: u64,
    /// Seq of the last appended frame (contiguity guard).
    wal_last_seq: Option<SeqNum>,
    /// Volatile copy of the live WAL frames (encoded), kept so compaction
    /// can rewrite the region without a read-modify-write of the device.
    wal_cache: Vec<(SeqNum, Vec<u8>)>,
    /// Generation of the last snapshot written or recovered.
    snap_gen: u64,
    /// Seq of the last snapshot written or recovered.
    snap_seq: Option<SeqNum>,
    /// Which slot holds `snap_gen` (the next write goes to the other).
    active_slot: u64,
    /// Stable checkpoints seen since the last snapshot.
    stable_since_snapshot: u64,
    metrics: Metrics,
    prefix: String,
}

impl DurableStore {
    /// Wraps `disk` with a fresh (empty) volatile index. `prefix` is the
    /// metrics namespace, normally the owning replica's `reptor.r{id}.`.
    pub fn new(
        disk: SimDisk,
        wal_enabled: bool,
        snapshot_every: u64,
        metrics: Metrics,
        prefix: String,
    ) -> DurableStore {
        DurableStore {
            disk,
            wal_enabled,
            snapshot_every: snapshot_every.max(1),
            wal_end: WAL_BASE,
            wal_last_seq: None,
            wal_cache: Vec::new(),
            snap_gen: 0,
            snap_seq: None,
            // The first snapshot goes to slot 0 (`1 - active_slot`).
            active_slot: 1,
            stable_since_snapshot: 0,
            metrics,
            prefix,
        }
    }

    fn bump(&self, metric: &str, n: u64) {
        self.metrics.incr_by(&format!("{}{metric}", self.prefix), n);
    }

    /// The underlying device (for fault arming in tests).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Seq covered by the current snapshot, if any.
    pub fn snapshot_seq(&self) -> Option<SeqNum> {
        self.snap_seq
    }

    /// Appends one executed batch to the WAL, returning the disk ack
    /// time. A non-contiguous seq resets the log to start at `frame.seq`
    /// (the dropped prefix is covered by a snapshot or by peer state).
    pub fn append_batch(&mut self, now: Nanos, frame: &WalFrame) -> Nanos {
        if !self.wal_enabled {
            return now;
        }
        if let Some(last) = self.wal_last_seq {
            if frame.seq != last + 1 {
                self.wal_cache.clear();
                self.wal_end = WAL_BASE;
                self.disk.truncate(now, WAL_BASE);
            }
        }
        let encoded = encode_frame(frame);
        let done = self.disk.write(now, self.wal_end, &encoded);
        self.wal_end += encoded.len() as u64;
        self.wal_last_seq = Some(frame.seq);
        self.bump("wal_frames_appended", 1);
        self.bump("wal_bytes_appended", encoded.len() as u64);
        self.wal_cache.push((frame.seq, encoded));
        done
    }

    /// Records a stable checkpoint; returns true when a snapshot is due
    /// per `snapshot_every`.
    pub fn record_stable(&mut self) -> bool {
        self.stable_since_snapshot += 1;
        self.stable_since_snapshot >= self.snapshot_every
    }

    /// Writes `payload` (an encoded checkpoint at `seq`) into the
    /// inactive slot with the next generation, then compacts the WAL to
    /// frames past `seq`. Returns the disk ack time of the whole
    /// operation. Oversized payloads are skipped (counted).
    pub fn write_snapshot(&mut self, now: Nanos, seq: SeqNum, payload: &[u8]) -> Nanos {
        self.stable_since_snapshot = 0;
        let record = encode_slot(self.snap_gen + 1, seq, payload);
        if record.len() as u64 > SLOT_BYTES {
            self.bump("snapshot_skipped_oversize", 1);
            return now;
        }
        let slot = 1 - self.active_slot;
        let mut done = self.disk.write(now, slot * SLOT_BYTES, &record);
        self.snap_gen += 1;
        self.snap_seq = Some(seq);
        self.active_slot = slot;
        self.bump("snapshot_writes", 1);
        self.bump("snapshot_bytes_written", record.len() as u64);

        // Compact: rewrite the WAL keeping only frames past the snapshot.
        if self.wal_enabled {
            self.wal_cache.retain(|(s, _)| *s > seq);
            let mut region = Vec::new();
            for (_, encoded) in &self.wal_cache {
                region.extend_from_slice(encoded);
            }
            self.wal_end = WAL_BASE + region.len() as u64;
            if !region.is_empty() {
                done = self.disk.write(done, WAL_BASE, &region);
            }
            self.disk.truncate(done, self.wal_end);
            self.wal_last_seq = self.wal_cache.last().map(|(s, _)| *s);
            if self.wal_last_seq.is_none() {
                self.wal_last_seq = Some(seq);
            }
            self.bump("wal_compactions", 1);
        }
        done
    }

    /// Rebuilds the volatile index from disk after a crash: picks the
    /// best snapshot slot, scans the WAL to its clean prefix, and
    /// truncates the torn tail off the device so subsequent appends
    /// extend the valid prefix.
    pub fn recover(&mut self, now: Nanos) -> Recovered {
        let (slots, _) = self
            .disk
            .read(now, 0, (2 * SLOT_BYTES).min(self.disk.len()) as usize);
        let mut best: Option<(u64, SeqNum, Vec<u8>, u64)> = None;
        let mut saw_slot_bytes = false;
        for slot in 0..2u64 {
            let lo = (slot * SLOT_BYTES) as usize;
            if slots.len() <= lo {
                continue;
            }
            let hi = slots.len().min(lo + SLOT_BYTES as usize);
            let region = &slots[lo..hi];
            if region.iter().any(|&b| b != 0) {
                saw_slot_bytes = true;
            }
            if let Some((gen, seq, payload)) = decode_slot(region) {
                if best.as_ref().is_none_or(|(g, ..)| gen > *g) {
                    best = Some((gen, seq, payload, slot));
                }
            }
        }
        let snapshot_corrupt = saw_slot_bytes && best.is_none();
        if snapshot_corrupt {
            self.bump("snapshot_corrupt_fallback", 1);
        }
        match &best {
            Some((gen, seq, _, slot)) => {
                self.snap_gen = *gen;
                self.snap_seq = Some(*seq);
                self.active_slot = *slot;
            }
            None => {
                self.snap_gen = 0;
                self.snap_seq = None;
                self.active_slot = 1;
            }
        }

        let wal_len = self.disk.len().saturating_sub(WAL_BASE) as usize;
        let (wal_bytes, _) = self.disk.read(now, WAL_BASE, wal_len);
        let scan = scan_frames(&wal_bytes);
        if scan.truncated {
            self.bump("wal_frames_truncated", 1);
            self.disk.truncate(now, WAL_BASE + scan.valid_bytes);
        }
        self.wal_end = WAL_BASE + scan.valid_bytes;
        self.wal_last_seq = scan.frames.last().map(|f| f.seq);
        self.wal_cache = scan
            .frames
            .iter()
            .map(|f| (f.seq, encode_frame(f)))
            .collect();
        self.stable_since_snapshot = 0;

        Recovered {
            snapshot: best.map(|(_, seq, payload, _)| (seq, payload)),
            frames: scan.frames,
            snapshot_corrupt,
        }
    }
}

/// Slot record: `gen u64 | seq u64 | payload bytes | crc u32` with the
/// CRC over everything before it. A generation of zero never validates,
/// so an unwritten (all-zero) slot is simply invalid.
fn encode_slot(gen: u64, seq: SeqNum, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(gen);
    w.u64(seq);
    w.bytes(payload);
    let mut out = w.finish();
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_slot(region: &[u8]) -> Option<(u64, SeqNum, Vec<u8>)> {
    let mut r = Reader::new(region);
    let gen = r.u64().ok()?;
    if gen == 0 {
        return None;
    }
    let seq = r.u64().ok()?;
    let payload = r.bytes().ok()?;
    let body_len = region.len() - r.remaining();
    if r.remaining() < 4 {
        return None;
    }
    let crc = u32::from_le_bytes(region[body_len..body_len + 4].try_into().expect("4 bytes"));
    if crc32(&region[..body_len]) != crc {
        return None;
    }
    Some((gen, seq, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{DiskFault, DiskSpec};

    fn frame(seq: SeqNum) -> WalFrame {
        WalFrame {
            seq,
            digest: Digest::of(&seq.to_le_bytes()),
            requests: vec![Request {
                client: 9,
                timestamp: seq,
                payload: vec![seq as u8; 5],
            }],
        }
    }

    fn store() -> (DurableStore, Metrics) {
        let m = Metrics::new();
        let disk = SimDisk::new("t", DiskSpec::nvme(), m.clone());
        (
            DurableStore::new(disk, true, 2, m.clone(), "reptor.r0.".into()),
            m,
        )
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_roundtrip_and_clean_scan() {
        let (mut s, _) = store();
        for seq in 1..=5 {
            s.append_batch(Nanos::ZERO, &frame(seq));
        }
        let rec = s.recover(Nanos::ZERO);
        assert_eq!(rec.frames.len(), 5);
        assert_eq!(rec.frames[0], frame(1));
        assert!(rec.snapshot.is_none());
        assert!(!rec.snapshot_corrupt);
    }

    #[test]
    fn torn_tail_truncates_to_clean_prefix() {
        let (mut s, m) = store();
        s.append_batch(Nanos::ZERO, &frame(1));
        s.append_batch(Nanos::ZERO, &frame(2));
        // Tear the third append mid-frame.
        let tear_at = s.wal_end + 6;
        s.disk()
            .arm_fault(DiskFault::TornWrite { at_byte: tear_at });
        s.append_batch(Nanos::ZERO, &frame(3));
        let rec = s.recover(Nanos::ZERO);
        assert_eq!(
            rec.frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(m.counter("reptor.r0.wal_frames_truncated"), 1);
        // The torn tail is gone from the device: appending seq 3 again
        // extends the clean prefix.
        s.append_batch(Nanos::ZERO, &frame(3));
        let rec = s.recover(Nanos::ZERO);
        assert_eq!(rec.frames.len(), 3);
    }

    #[test]
    fn snapshot_compacts_wal_and_survives_restart() {
        let (mut s, _) = store();
        for seq in 1..=6 {
            s.append_batch(Nanos::ZERO, &frame(seq));
        }
        s.write_snapshot(Nanos::ZERO, 4, b"state-at-4");
        let rec = s.recover(Nanos::ZERO);
        assert_eq!(rec.snapshot, Some((4, b"state-at-4".to_vec())));
        assert_eq!(
            rec.frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![5, 6]
        );
    }

    #[test]
    fn newer_generation_wins_and_survives_one_corrupt_slot() {
        let (mut s, m) = store();
        s.write_snapshot(Nanos::ZERO, 4, b"old");
        s.write_snapshot(Nanos::ZERO, 8, b"new");
        let rec = s.recover(Nanos::ZERO);
        assert_eq!(rec.snapshot, Some((8, b"new".to_vec())));
        // Gen 3 lands back in slot 0, corrupted in flight: recovery falls
        // back to the intact gen-2 slot.
        s.disk().arm_fault(DiskFault::BitFlip { at_byte: 20 });
        s.write_snapshot(Nanos::ZERO, 12, b"doomed");
        let rec = s.recover(Nanos::ZERO);
        assert_eq!(rec.snapshot, Some((8, b"new".to_vec())));
        assert!(!rec.snapshot_corrupt, "one valid slot remains");
        assert_eq!(m.counter("reptor.r0.snapshot_corrupt_fallback"), 0);
    }

    #[test]
    fn both_slots_corrupt_counts_fallback() {
        let (mut s, m) = store();
        s.disk().arm_fault(DiskFault::BitFlip { at_byte: 20 });
        s.write_snapshot(Nanos::ZERO, 4, b"only");
        let rec = s.recover(Nanos::ZERO);
        assert!(rec.snapshot.is_none());
        assert!(rec.snapshot_corrupt);
        assert_eq!(m.counter("reptor.r0.snapshot_corrupt_fallback"), 1);
    }

    #[test]
    fn lost_compaction_write_leaves_replayable_gap() {
        let (mut s, _) = store();
        for seq in 1..=6 {
            s.append_batch(Nanos::ZERO, &frame(seq));
        }
        // The snapshot write is lost after ack; the WAL compaction that
        // follows still lands. Recovery then sees no snapshot and a WAL
        // starting at seq 5 — which cannot replay from zero, so the
        // usable prefix is empty state + peer fetch. Crucially: no panic,
        // no wrong state.
        s.disk().arm_fault(DiskFault::LostAfterAck);
        s.write_snapshot(Nanos::ZERO, 4, b"state-at-4");
        let rec = s.recover(Nanos::ZERO);
        assert!(rec.snapshot.is_none());
        assert_eq!(
            rec.frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![5, 6],
            "frames are intact; the caller's replay-from check skips them"
        );
    }

    #[test]
    fn record_stable_fires_every_n() {
        let (mut s, _) = store();
        assert!(!s.record_stable());
        assert!(s.record_stable());
        s.write_snapshot(Nanos::ZERO, 4, b"x");
        assert!(!s.record_stable(), "counter reset by the snapshot");
    }

    #[test]
    fn scan_never_panics_on_arbitrary_corruption() {
        let mut bytes = Vec::new();
        for seq in 1..=4 {
            bytes.extend_from_slice(&encode_frame(&frame(seq)));
        }
        for cut in 0..bytes.len() {
            let scan = scan_frames(&bytes[..cut]);
            assert!(scan.frames.len() <= 4);
            for (i, f) in scan.frames.iter().enumerate() {
                assert_eq!(f.seq, i as u64 + 1, "prefix of the original");
            }
        }
        for flip in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[flip] ^= 0x01;
            let scan = scan_frames(&corrupt);
            for (i, f) in scan.frames.iter().enumerate() {
                assert_eq!(f.seq, i as u64 + 1);
            }
        }
    }
}
