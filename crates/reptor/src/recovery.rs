//! Proactive recovery: epoch-based replica refresh.
//!
//! PBFT's safety argument assumes at most `f` faulty replicas *forever*;
//! without intervention, slow compromise eventually crosses the bound. The
//! [`RecoveryScheduler`] restores it proactively: clocked by a periodic
//! `simnet` timer, it advances a global **recovery epoch** and round-robins
//! every replica through [`Replica::restart`] followed by the PR 4
//! checkpoint state-transfer path, so each replica periodically returns to
//! a clean state rebuilt from the group's certified checkpoint.
//!
//! Two properties make the refresh safe and cheap:
//!
//! * **Stagger bound** — at most one replica (≤ f) is mid-refresh at any
//!   instant. The scheduler restarts the next replica only after the
//!   previous one has rejoined (executing again with no transfer in
//!   flight) or its refresh deadline expired, so the agreement quorum
//!   `2f + 1` is never reduced by more than one member and client
//!   throughput stays above zero throughout a rotation.
//! * **RNIC-fenced offers** — on each epoch roll every replica
//!   re-registers its checkpoint-store memory region and invalidates the
//!   previous one ([`Replica::roll_recovery_epoch`]). A one-sided READ
//!   carrying a stale epoch's rkey is denied by the rdma-verbs permission
//!   check (`stale_rkey_denied`), and the NIO stack mirrors the fence by
//!   rejecting `StateRequest`s tagged with a stale epoch at the responder
//!   (`stale_epoch_rejected`). Dynamic permission revocation as a protocol
//!   primitive follows Aguilera et al., *The Impact of RDMA on Agreement*.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use simnet::{Metrics, Nanos, Simulator};

use crate::replica::Replica;
use crate::state::StateMachine;

/// Timing knobs of the proactive-recovery rotation.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Period between rotation starts (one epoch roll each).
    pub period: Nanos,
    /// Poll interval while waiting for a restarted replica to rejoin.
    pub poll: Nanos,
    /// Per-replica refresh deadline: a replica that has not rejoined by
    /// then is abandoned (counted) and the rotation moves on, so one dead
    /// replica cannot wedge proactive recovery for the whole group.
    pub refresh_deadline: Nanos,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            period: Nanos::from_millis(400),
            poll: Nanos::from_millis(5),
            refresh_deadline: Nanos::from_millis(200),
        }
    }
}

/// Counters exposed by the scheduler (also mirrored as `proactive_*`
/// metrics on the shared registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Epoch rolls issued (one per rotation start).
    pub epoch_rolls: u64,
    /// Replica refreshes that completed (restart + rejoin).
    pub refreshes_completed: u64,
    /// Refreshes abandoned at the deadline.
    pub refresh_timeouts: u64,
    /// Full rotations (every replica refreshed once) completed.
    pub rotations_completed: u64,
    /// Timer ticks skipped because the previous rotation was still
    /// running.
    pub rotations_skipped: u64,
}

/// Factory producing a fresh, empty service instance for each restart.
pub type ServiceFactory = Box<dyn FnMut() -> Box<dyn StateMachine>>;

struct SchedInner {
    replicas: Vec<Replica>,
    service: ServiceFactory,
    cfg: RecoveryConfig,
    metrics: Metrics,
    /// The epoch the last roll advanced the group to.
    epoch: u64,
    /// Replica index currently mid-refresh (`None` between refreshes).
    refreshing: Option<usize>,
    /// Victims still to refresh in the current rotation.
    pending: VecDeque<usize>,
    stats: RecoveryStats,
}

impl SchedInner {
    fn bump(&self, metric: &str) {
        self.metrics.incr(&format!("recovery.{metric}"));
    }
}

/// Drives epoch-based proactive recovery over a replica group. Cheap to
/// clone (shared handle).
#[derive(Clone)]
pub struct RecoveryScheduler {
    inner: Rc<RefCell<SchedInner>>,
}

impl RecoveryScheduler {
    /// Creates a scheduler over `replicas`. `service` mints the fresh
    /// state-machine instance handed to each [`Replica::restart`].
    pub fn new(
        replicas: Vec<Replica>,
        cfg: RecoveryConfig,
        metrics: Metrics,
        service: ServiceFactory,
    ) -> RecoveryScheduler {
        assert!(!replicas.is_empty(), "recovery needs at least one replica");
        RecoveryScheduler {
            inner: Rc::new(RefCell::new(SchedInner {
                replicas,
                service,
                cfg,
                metrics,
                epoch: 0,
                refreshing: None,
                pending: VecDeque::new(),
                stats: RecoveryStats::default(),
            })),
        }
    }

    /// Arms the periodic rotation timer: one rotation attempt every
    /// `cfg.period` until `stop_after` rotations have completed (pass
    /// `u64::MAX` for an open-ended schedule).
    pub fn start(&self, sim: &mut Simulator, stop_after: u64) {
        let period = self.inner.borrow().cfg.period;
        let sched = self.clone();
        sim.schedule_every(period, move |sim| {
            if sched.stats().rotations_completed >= stop_after {
                return false;
            }
            sched.begin_rotation(sim);
            true
        });
    }

    /// Starts one rotation: rolls the group to the next recovery epoch
    /// (re-registering and fencing every store region) and begins
    /// refreshing replicas one at a time. Returns `false` (and counts a
    /// skip) if the previous rotation is still in progress.
    pub fn begin_rotation(&self, sim: &mut Simulator) -> bool {
        let (epoch, replicas) = {
            let mut inner = self.inner.borrow_mut();
            if inner.refreshing.is_some() || !inner.pending.is_empty() {
                inner.stats.rotations_skipped += 1;
                inner.bump("proactive_rotations_skipped");
                return false;
            }
            inner.epoch += 1;
            inner.stats.epoch_rolls += 1;
            inner.bump("proactive_epoch_rolls");
            inner.pending = (0..inner.replicas.len()).collect();
            (inner.epoch, inner.replicas.clone())
        };
        // Fence first, restart second: every replica (including the ones
        // not yet refreshed) re-registers its store regions under the new
        // epoch before any fetcher starts a transfer against them.
        for r in &replicas {
            r.roll_recovery_epoch(sim, epoch);
        }
        self.refresh_next(sim);
        true
    }

    /// The recovery epoch of the most recent roll.
    pub fn epoch(&self) -> u64 {
        self.inner.borrow().epoch
    }

    /// Index of the replica currently mid-refresh, if any. The stagger
    /// invariant is that this is never more than one replica — tests
    /// sample it at every simulator step.
    pub fn refreshing(&self) -> Option<usize> {
        self.inner.borrow().refreshing
    }

    /// Scheduler counters.
    pub fn stats(&self) -> RecoveryStats {
        self.inner.borrow().stats
    }

    fn refresh_next(&self, sim: &mut Simulator) {
        let victim = {
            let mut inner = self.inner.borrow_mut();
            match inner.pending.pop_front() {
                Some(v) => {
                    inner.refreshing = Some(v);
                    v
                }
                None => {
                    inner.stats.rotations_completed += 1;
                    inner.bump("proactive_rotations_completed");
                    return;
                }
            }
        };
        let (replica, fresh, poll, deadline) = {
            let mut inner = self.inner.borrow_mut();
            let fresh = (inner.service)();
            (
                inner.replicas[victim].clone(),
                fresh,
                inner.cfg.poll,
                sim.now() + inner.cfg.refresh_deadline,
            )
        };
        self.inner.borrow().bump("proactive_refreshes_started");
        replica.restart(sim, fresh);
        self.poll_rejoin(sim, victim, poll, deadline);
    }

    fn poll_rejoin(&self, sim: &mut Simulator, victim: usize, poll: Nanos, deadline: Nanos) {
        let sched = self.clone();
        sim.schedule_in(
            poll,
            Box::new(move |sim| {
                let rejoined = {
                    let inner = sched.inner.borrow();
                    let r = &inner.replicas[victim];
                    r.last_executed() > 0 && !r.transfer_in_progress()
                };
                if rejoined {
                    let mut inner = sched.inner.borrow_mut();
                    inner.refreshing = None;
                    inner.stats.refreshes_completed += 1;
                    inner.bump("proactive_refreshes_completed");
                } else if sim.now() >= deadline {
                    let mut inner = sched.inner.borrow_mut();
                    inner.refreshing = None;
                    inner.stats.refresh_timeouts += 1;
                    inner.bump("proactive_refresh_timeouts");
                } else {
                    sched.poll_rejoin(sim, victim, poll, deadline);
                    return;
                }
                sched.refresh_next(sim);
            }),
        );
    }
}
