//! The transport abstraction and the direct simulated-fabric transport.
//!
//! Reptor's comm stack is pluggable: the same replica logic runs over the
//! Java-NIO-style TCP stack ([`crate::nio_transport`]) and over RUBIN
//! ([`crate::rubin_transport`]), which is exactly the property the paper's
//! framework integration relies on (§III: RUBIN replaces the NIO selector
//! and socket channel without redesigning the stack).
//!
//! [`SimTransport`] bypasses both comm stacks and delivers message frames
//! straight through the fabric — protocol-logic tests use it so failures
//! point at the protocol, not the stack.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use simnet::{Addr, Frame, HostId, Network, Simulator};

use crate::state_transfer::StateOffer;

/// A node in the replica/client group.
pub type NodeId = u32;

/// Delivery callback: `(sim, from, bytes)`.
pub type DeliveryFn = Rc<dyn Fn(&mut Simulator, NodeId, Vec<u8>)>;

/// Completion callback for a one-sided state read: `Some(bytes)` on
/// success, `None` if the read failed (bad rkey, flushed QP, dead link).
pub type StateReadFn = Box<dyn FnOnce(&mut Simulator, Option<Vec<u8>>)>;

/// Completion callback for a one-sided slot write: `true` once the WRITE
/// was acknowledged by the peer's RNIC, `false` if it was denied (revoked
/// permission) or the QP failed first.
pub type SlotWriteFn = Box<dyn FnOnce(&mut Simulator, bool)>;

/// Doorbell callback for inbound slot writes: `(sim, from, imm, len)`. The
/// immediate identifies the slot that was written; the payload is read out
/// of the registered slot region, not passed here.
pub type SlotDoorbellFn = Rc<dyn Fn(&mut Simulator, NodeId, u32, usize)>;

/// A WRITE-permission grant for a fast-path slot region: the rkey a remote
/// leader needs to deposit pre-prepares one-sidedly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRegion {
    /// Remote WRITE key of the region (0 = not writable).
    pub rkey: u32,
    /// Region length in bytes.
    pub len: u64,
}

/// Lane-demultiplexed delivery callback: `(sim, lane, from, bytes)`. The
/// lane is the COP pipeline owning the frame's sequence number (lane 0 for
/// traffic without one).
pub type LaneDeliveryFn = Rc<dyn Fn(&mut Simulator, usize, NodeId, Vec<u8>)>;

/// The COP demultiplexing rule applied to an encoded wire frame: agreement
/// traffic routes to pipeline `seq mod lanes`, everything else (requests,
/// replies, checkpoints, view-change traffic) to lane 0.
pub fn wire_lane(bytes: &[u8], lanes: usize) -> usize {
    crate::messages::SignedMessage::peek_wire_seq(bytes)
        .map_or(0, |seq| (seq % lanes.max(1) as u64) as usize)
}

/// A message-oriented, non-blocking transport between group members.
pub trait Transport {
    /// This endpoint's node id.
    fn node(&self) -> NodeId;

    /// Sends `msg` to `to`. Transports buffer internally; delivery is
    /// asynchronous.
    fn send(&self, sim: &mut Simulator, to: NodeId, msg: Vec<u8>);

    /// Installs the delivery callback (replacing any previous one).
    fn set_delivery(&self, f: DeliveryFn);

    /// Installs a lane-demultiplexed delivery callback: each inbound frame
    /// is routed to one of `lanes` COP pipelines by peeking the sequence
    /// number out of the wire header ([`wire_lane`]). The default adapts
    /// [`Transport::set_delivery`]; transports with per-lane accounting
    /// override it.
    fn set_lane_delivery(&self, lanes: usize, f: LaneDeliveryFn) {
        self.set_delivery(Rc::new(move |sim, from, bytes| {
            let lane = wire_lane(&bytes, lanes);
            f(sim, lane, from, bytes);
        }));
    }

    /// Sends `msg` to every node in `peers` (excluding self).
    fn broadcast(&self, sim: &mut Simulator, peers: &[NodeId], msg: &[u8]) {
        for &p in peers {
            if p != self.node() {
                self.send(sim, p, msg.to_vec());
            }
        }
    }

    /// Registers `bytes` as a remotely readable state region (the
    /// checkpoint store) and returns its read offer. Transports without a
    /// one-sided read primitive return `None`; peers then fall back to
    /// chunked `StateRequest`/`StateChunk` messages.
    fn register_state_region(&self, sim: &mut Simulator, bytes: &[u8]) -> Option<StateOffer> {
        let _ = (sim, bytes);
        None
    }

    /// Releases a region previously returned by
    /// [`Transport::register_state_region`]; pending remote reads of it
    /// will fail with a protection error.
    fn release_state_region(&self, offer: &StateOffer) {
        let _ = offer;
    }

    /// Updates `[offset, offset+bytes.len())` of a locally registered
    /// state region in place. Used by the read-lease execution path to
    /// publish applied cells without a re-registration. Returns false if
    /// the region is unknown (already released) or the write is out of
    /// bounds; transports without one-sided support always return false.
    fn write_state_region(&self, offer: &StateOffer, offset: u64, bytes: &[u8]) -> bool {
        let _ = (offer, offset, bytes);
        false
    }

    /// Issues a one-sided read of `[offset, offset+len)` from `peer`'s
    /// region `rkey`, invoking `done` with the bytes (or `None` on
    /// failure). Returns false if this transport (or the link to `peer`)
    /// has no one-sided read path — the caller falls back to messages.
    fn read_state(
        &self,
        sim: &mut Simulator,
        peer: NodeId,
        rkey: u32,
        offset: u64,
        len: usize,
        done: StateReadFn,
    ) -> bool {
        let _ = (sim, peer, rkey, offset, len, done);
        false
    }

    /// Registers a remotely WRITE-able slot region of `len` bytes (the
    /// fast-path pre-prepare slots) and returns its grant. Transports
    /// without a one-sided write primitive return `None`; the leader then
    /// falls back to message-path pre-prepares.
    fn register_write_region(&self, sim: &mut Simulator, len: usize) -> Option<SlotRegion> {
        let _ = (sim, len);
        None
    }

    /// Releases (revokes) a region previously returned by
    /// [`Transport::register_write_region`]; in-flight remote writes to it
    /// are denied by the RNIC from this point on.
    fn release_write_region(&self, region: &SlotRegion) {
        let _ = region;
    }

    /// Reads `[offset, offset+len)` of the local slot region `region` (the
    /// doorbell handler pulling a deposited pre-prepare out of its slot).
    fn read_write_region(&self, region: &SlotRegion, offset: u64, len: usize) -> Option<Vec<u8>> {
        let _ = (region, offset, len);
        None
    }

    /// One-sided WRITE of `data` into `peer`'s slot region `rkey` at
    /// `offset`, ringing the peer's doorbell with `imm`. Returns false if
    /// this transport (or the link to `peer`) has no one-sided write path —
    /// the caller falls back to a message-path pre-prepare.
    #[allow(clippy::too_many_arguments)]
    fn write_slot(
        &self,
        sim: &mut Simulator,
        peer: NodeId,
        rkey: u32,
        offset: u64,
        data: &[u8],
        imm: u32,
        done: SlotWriteFn,
    ) -> bool {
        let _ = (sim, peer, rkey, offset, data, imm, done);
        false
    }

    /// Installs the handler invoked when a peer WRITEs into one of this
    /// endpoint's registered slot regions.
    fn set_slot_doorbell(&self, f: SlotDoorbellFn) {
        let _ = f;
    }
}

/// Port base used by the direct transport.
const SIM_TRANSPORT_PORT: u32 = 700;

struct SimTransportInner {
    node: NodeId,
    host: HostId,
    net: Network,
    directory: Rc<RefCell<Vec<(NodeId, HostId)>>>,
    delivery: Option<DeliveryFn>,
    sent: u64,
    received: u64,
}

/// Direct fabric transport: frames travel over the simulated links with
/// realistic wire timing but no protocol-stack CPU model.
#[derive(Clone)]
pub struct SimTransport {
    inner: Rc<RefCell<SimTransportInner>>,
}

impl fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("SimTransport")
            .field("node", &inner.node)
            .field("sent", &inner.sent)
            .field("received", &inner.received)
            .finish()
    }
}

#[derive(Clone)]
struct SimMsg {
    from: NodeId,
    bytes: Vec<u8>,
}

impl SimTransport {
    /// Builds one transport per `(node, host)` pair, all able to reach each
    /// other.
    pub fn build_group(net: &Network, nodes: &[(NodeId, HostId)]) -> Vec<SimTransport> {
        let directory = Rc::new(RefCell::new(nodes.to_vec()));
        nodes
            .iter()
            .map(|&(node, host)| {
                let t = SimTransport {
                    inner: Rc::new(RefCell::new(SimTransportInner {
                        node,
                        host,
                        net: net.clone(),
                        directory: directory.clone(),
                        delivery: None,
                        sent: 0,
                        received: 0,
                    })),
                };
                let addr = Addr::new(host, SIM_TRANSPORT_PORT + node);
                let t2 = t.clone();
                net.bind(
                    addr,
                    Box::new(move |sim, frame| {
                        let corrupted = frame.corrupted;
                        if let Ok(mut m) = frame.into_payload::<SimMsg>() {
                            // Materialize fault-injected corruption so the
                            // MAC check above this transport rejects it.
                            if corrupted {
                                if let Some(byte) = m.bytes.last_mut() {
                                    *byte ^= 0xff;
                                }
                            }
                            t2.deliver(sim, m.from, m.bytes);
                        }
                    }),
                );
                t
            })
            .collect()
    }

    fn deliver(&self, sim: &mut Simulator, from: NodeId, bytes: Vec<u8>) {
        let cb = {
            let mut inner = self.inner.borrow_mut();
            inner.received += 1;
            inner.delivery.clone()
        };
        if let Some(cb) = cb {
            cb(sim, from, bytes);
        }
    }

    /// Messages sent by this endpoint.
    pub fn sent_count(&self) -> u64 {
        self.inner.borrow().sent
    }

    /// Messages delivered to this endpoint.
    pub fn received_count(&self) -> u64 {
        self.inner.borrow().received
    }
}

impl Transport for SimTransport {
    fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    fn send(&self, sim: &mut Simulator, to: NodeId, msg: Vec<u8>) {
        let (net, src, dst, len) = {
            let mut inner = self.inner.borrow_mut();
            inner.sent += 1;
            let dst_host = inner
                .directory
                .borrow()
                .iter()
                .find(|(n, _)| *n == to)
                .map(|&(_, h)| h);
            let Some(dst_host) = dst_host else {
                return; // unknown peer: drop (tests use this for absent nodes)
            };
            let src = Addr::new(inner.host, SIM_TRANSPORT_PORT + inner.node);
            let dst = Addr::new(dst_host, SIM_TRANSPORT_PORT + to);
            (inner.net.clone(), src, dst, msg.len())
        };
        let from = self.node();
        net.send(
            sim,
            Frame::new(src, dst, len + 16, SimMsg { from, bytes: msg }),
        );
    }

    fn set_delivery(&self, f: DeliveryFn) {
        self.inner.borrow_mut().delivery = Some(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::TestBed;
    use std::cell::RefCell;

    #[test]
    fn group_members_can_exchange_messages() {
        let (mut sim, net, hosts) = TestBed::cluster(0, 3);
        let nodes: Vec<(NodeId, HostId)> = hosts
            .iter()
            .enumerate()
            .map(|(i, &h)| (i as u32, h))
            .collect();
        let group = SimTransport::build_group(&net, &nodes);

        type Inbox = Rc<RefCell<Vec<(NodeId, Vec<u8>)>>>;
        let got: Inbox = Rc::new(RefCell::new(vec![]));
        for t in &group {
            let g = got.clone();
            let me = t.node();
            t.set_delivery(Rc::new(move |_sim, from, bytes| {
                g.borrow_mut().push((from, bytes));
                let _ = me;
            }));
        }
        group[0].send(&mut sim, 1, b"to-1".to_vec());
        group[2].broadcast(&mut sim, &[0, 1, 2], b"bc");
        sim.run_until_idle();
        let got = got.borrow();
        assert!(got.contains(&(0, b"to-1".to_vec())));
        // Broadcast reaches 0 and 1 but not the sender itself.
        assert_eq!(got.iter().filter(|(f, _)| *f == 2).count(), 2);
        assert_eq!(group[2].sent_count(), 2);
    }

    #[test]
    fn unknown_peer_is_dropped_silently() {
        let (mut sim, net, hosts) = TestBed::cluster(0, 2);
        let nodes: Vec<(NodeId, HostId)> = hosts
            .iter()
            .enumerate()
            .map(|(i, &h)| (i as u32, h))
            .collect();
        let group = SimTransport::build_group(&net, &nodes);
        group[0].send(&mut sim, 99, b"nowhere".to_vec());
        sim.run_until_idle();
    }

    #[test]
    fn partition_blocks_delivery() {
        let (mut sim, net, hosts) = TestBed::cluster(0, 2);
        let nodes: Vec<(NodeId, HostId)> = hosts
            .iter()
            .enumerate()
            .map(|(i, &h)| (i as u32, h))
            .collect();
        let group = SimTransport::build_group(&net, &nodes);
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        group[1].set_delivery(Rc::new(move |_s, _f, _b| {
            *h.borrow_mut() = true;
        }));
        net.with_faults(|f| f.partition(hosts[0], hosts[1]));
        group[0].send(&mut sim, 1, b"lost".to_vec());
        sim.run_until_idle();
        assert!(!*hit.borrow());
        net.with_faults(|f| f.heal(hosts[0], hosts[1]));
        group[0].send(&mut sim, 1, b"found".to_vec());
        sim.run_until_idle();
        assert!(*hit.borrow());
    }
}
