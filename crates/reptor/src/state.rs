//! Replicated service state machines (the execution stage, paper §II-B).

use std::collections::BTreeMap;

use bft_crypto::Digest;
use simnet::Nanos;

use crate::codec::{Reader, Writer};
use crate::messages::Request;

/// A deterministic replicated service.
///
/// The agreement stage feeds committed requests to `apply` in sequence
/// order on every correct replica; determinism of the implementation is
/// what makes the replicas' replies match.
pub trait StateMachine {
    /// Executes one operation and returns its result.
    fn apply(&mut self, req: &Request) -> Vec<u8>;

    /// Digest of the current state (checkpoints, paper §II-B).
    fn state_digest(&self) -> Digest;

    /// Simulated CPU cost of executing `req` (charged to the execution
    /// core).
    fn op_cost(&self, req: &Request) -> Nanos {
        Nanos::from_nanos(1_000 + 2 * req.payload.len() as u64)
    }

    /// Serializes the full service state for checkpoint state transfer.
    ///
    /// The default returns an empty snapshot: agreement-layer metadata
    /// (executor position, client sessions) still transfers, but the
    /// service itself starts empty on the fetcher — acceptable only for
    /// stateless demo services. Replicated services that want rejoin
    /// support must override both this and [`StateMachine::restore`] so
    /// that `restore(&snapshot())` reproduces a state with an identical
    /// [`StateMachine::state_digest`].
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Replaces the service state with a previously snapshotted one.
    /// Returns false on malformed bytes (the state transfer aborts and
    /// retries from another peer).
    fn restore(&mut self, snapshot: &[u8]) -> bool {
        snapshot.is_empty()
    }

    /// Byte image of the service's one-sided read region, if the service
    /// exposes one.
    ///
    /// Services that want agreement-free client reads lay out their
    /// applied state in a fixed-size region of version-stamped cells; the
    /// replica registers this image as an RDMA MR and leases the rkey to
    /// clients. The default (`None`) keeps existing services lease-free.
    fn read_region_image(&self) -> Option<Vec<u8>> {
        None
    }

    /// Drains the region writes produced by `apply` calls since the last
    /// drain.
    ///
    /// Each [`RegionWrite`] is a two-phase update of one cell: the replica
    /// copies `begin` (an odd, torn version stamp) into the registered MR
    /// immediately and `commit` (the full cell, even stamp) a sub-RTT
    /// moment later, so concurrent one-sided READs observe either the old
    /// committed cell, the torn marker, or the new committed cell — never
    /// a silent half-write.
    fn drain_region_writes(&mut self) -> Vec<RegionWrite> {
        Vec::new()
    }
}

/// One two-phase cell update destined for a replica's leased read region.
///
/// Produced by [`StateMachine::drain_region_writes`]; consumed by the
/// replica's execution stage, which stages `begin` into the MR at apply
/// time and `commit` one torn-window later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionWrite {
    /// Byte offset of the cell inside the region.
    pub offset: u64,
    /// First-phase bytes: the cell's version stamp set to an odd (torn)
    /// value.
    pub begin: Vec<u8>,
    /// Second-phase bytes: the complete cell with an even (committed)
    /// version stamp.
    pub commit: Vec<u8>,
}

/// Echoes the request payload (the workload of the paper's echo
/// benchmarks).
#[derive(Debug, Default, Clone)]
pub struct EchoService {
    ops: u64,
}

impl StateMachine for EchoService {
    fn apply(&mut self, req: &Request) -> Vec<u8> {
        self.ops += 1;
        req.payload.clone()
    }

    fn state_digest(&self) -> Digest {
        Digest::of(&self.ops.to_le_bytes())
    }

    fn snapshot(&self) -> Vec<u8> {
        self.ops.to_le_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) -> bool {
        match <[u8; 8]>::try_from(snapshot) {
            Ok(raw) => {
                self.ops = u64::from_le_bytes(raw);
                true
            }
            Err(_) => false,
        }
    }
}

/// A replicated counter: `payload = "inc"` increments and returns the new
/// value; anything else reads.
#[derive(Debug, Default, Clone)]
pub struct CounterService {
    value: u64,
}

impl CounterService {
    /// Current value (tests).
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl StateMachine for CounterService {
    fn apply(&mut self, req: &Request) -> Vec<u8> {
        if req.payload == b"inc" {
            self.value += 1;
        }
        self.value.to_le_bytes().to_vec()
    }

    fn state_digest(&self) -> Digest {
        Digest::of(&self.value.to_le_bytes())
    }

    fn snapshot(&self) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) -> bool {
        match <[u8; 8]>::try_from(snapshot) {
            Ok(raw) => {
                self.value = u64::from_le_bytes(raw);
                true
            }
            Err(_) => false,
        }
    }
}

/// Operations understood by [`KvService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get(Vec<u8>),
    /// Write a key.
    Put(Vec<u8>, Vec<u8>),
    /// Delete a key.
    Del(Vec<u8>),
}

impl KvOp {
    /// Encodes the operation as a request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            KvOp::Get(k) => {
                out.push(0);
                out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                out.extend_from_slice(k);
            }
            KvOp::Put(k, v) => {
                out.push(1);
                out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                out.extend_from_slice(k);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            KvOp::Del(k) => {
                out.push(2);
                out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                out.extend_from_slice(k);
            }
        }
        out
    }

    /// Decodes a request payload. `None` on malformed input (executed as a
    /// no-op so replicas stay deterministic even for garbage requests).
    pub fn decode(buf: &[u8]) -> Option<KvOp> {
        fn take(buf: &[u8]) -> Option<(Vec<u8>, &[u8])> {
            if buf.len() < 4 {
                return None;
            }
            let len = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
            let rest = &buf[4..];
            if rest.len() < len {
                return None;
            }
            Some((rest[..len].to_vec(), &rest[len..]))
        }
        let (&tag, rest) = buf.split_first()?;
        match tag {
            0 => {
                let (k, rest) = take(rest)?;
                rest.is_empty().then_some(KvOp::Get(k))
            }
            1 => {
                let (k, rest) = take(rest)?;
                let (v, rest) = take(rest)?;
                rest.is_empty().then_some(KvOp::Put(k, v))
            }
            2 => {
                let (k, rest) = take(rest)?;
                rest.is_empty().then_some(KvOp::Del(k))
            }
            _ => None,
        }
    }
}

/// A replicated key/value store.
#[derive(Debug, Default, Clone)]
pub struct KvService {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    version: u64,
}

impl KvService {
    /// Number of keys stored (tests).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct read (tests compare replica states).
    pub fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.map.get(key)
    }
}

impl StateMachine for KvService {
    fn apply(&mut self, req: &Request) -> Vec<u8> {
        self.version += 1;
        match KvOp::decode(&req.payload) {
            Some(KvOp::Get(k)) => self.map.get(&k).cloned().unwrap_or_default(),
            Some(KvOp::Put(k, v)) => {
                self.map.insert(k, v);
                b"OK".to_vec()
            }
            Some(KvOp::Del(k)) => {
                if self.map.remove(&k).is_some() {
                    b"OK".to_vec()
                } else {
                    b"MISS".to_vec()
                }
            }
            None => b"ERR".to_vec(),
        }
    }

    fn state_digest(&self) -> Digest {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(self.map.len() * 2 + 1);
        let ver = self.version.to_le_bytes();
        parts.push(&ver);
        for (k, v) in &self.map {
            parts.push(k);
            parts.push(v);
        }
        Digest::of_parts(&parts)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.version);
        w.u32(self.map.len() as u32);
        for (k, v) in &self.map {
            w.bytes(k);
            w.bytes(v);
        }
        w.finish()
    }

    fn restore(&mut self, snapshot: &[u8]) -> bool {
        let mut r = Reader::new(snapshot);
        let Ok(version) = r.u64() else { return false };
        let Ok(count) = r.u32() else { return false };
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let (Ok(k), Ok(v)) = (r.bytes(), r.bytes()) else {
                return false;
            };
            map.insert(k, v);
        }
        if r.expect_end().is_err() {
            return false;
        }
        self.version = version;
        self.map = map;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(payload: Vec<u8>) -> Request {
        Request {
            client: 1,
            timestamp: 1,
            payload,
        }
    }

    #[test]
    fn counter_applies_in_order() {
        let mut c = CounterService::default();
        assert_eq!(c.apply(&req(b"inc".to_vec())), 1u64.to_le_bytes());
        assert_eq!(c.apply(&req(b"inc".to_vec())), 2u64.to_le_bytes());
        assert_eq!(c.apply(&req(b"get".to_vec())), 2u64.to_le_bytes());
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn kv_ops_roundtrip_and_apply() {
        for op in [
            KvOp::Get(b"k".to_vec()),
            KvOp::Put(b"k".to_vec(), b"v".to_vec()),
            KvOp::Del(b"k".to_vec()),
        ] {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
        let mut kv = KvService::default();
        assert_eq!(
            kv.apply(&req(KvOp::Put(b"a".to_vec(), b"1".to_vec()).encode())),
            b"OK"
        );
        assert_eq!(kv.apply(&req(KvOp::Get(b"a".to_vec()).encode())), b"1");
        assert_eq!(kv.apply(&req(KvOp::Del(b"a".to_vec()).encode())), b"OK");
        assert_eq!(kv.apply(&req(KvOp::Del(b"a".to_vec()).encode())), b"MISS");
        assert_eq!(kv.apply(&req(b"garbage".to_vec())), b"ERR");
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_malformed_payload_rejected() {
        assert_eq!(KvOp::decode(&[]), None);
        assert_eq!(KvOp::decode(&[9, 0, 0, 0, 0]), None);
        assert_eq!(KvOp::decode(&[0, 255, 255, 255, 255]), None);
        // Trailing bytes rejected.
        let mut enc = KvOp::Get(b"k".to_vec()).encode();
        enc.push(0);
        assert_eq!(KvOp::decode(&enc), None);
    }

    #[test]
    fn state_digest_tracks_content_and_history() {
        let mut a = KvService::default();
        let mut b = KvService::default();
        assert_eq!(a.state_digest(), b.state_digest());
        a.apply(&req(KvOp::Put(b"k".to_vec(), b"v".to_vec()).encode()));
        assert_ne!(a.state_digest(), b.state_digest());
        b.apply(&req(KvOp::Put(b"k".to_vec(), b"v".to_vec()).encode()));
        assert_eq!(a.state_digest(), b.state_digest());
        // Same content reached by different histories differs by version.
        let mut c = KvService::default();
        c.apply(&req(KvOp::Put(b"k".to_vec(), b"x".to_vec()).encode()));
        c.apply(&req(KvOp::Put(b"k".to_vec(), b"v".to_vec()).encode()));
        assert_ne!(a.state_digest(), c.state_digest());
    }

    #[test]
    fn echo_returns_payload() {
        let mut e = EchoService::default();
        assert_eq!(e.apply(&req(b"ping".to_vec())), b"ping");
        let d1 = e.state_digest();
        e.apply(&req(b"ping".to_vec()));
        assert_ne!(d1, e.state_digest());
    }

    #[test]
    fn op_cost_scales_with_payload() {
        let e = EchoService::default();
        assert!(e.op_cost(&req(vec![0; 10_000])) > e.op_cost(&req(vec![0; 10])));
    }

    #[test]
    fn snapshots_roundtrip_with_identical_digests() {
        let mut counter = CounterService::default();
        counter.apply(&req(b"inc".to_vec()));
        counter.apply(&req(b"inc".to_vec()));
        let mut fresh = CounterService::default();
        assert!(fresh.restore(&counter.snapshot()));
        assert_eq!(fresh.value(), 2);
        assert_eq!(fresh.state_digest(), counter.state_digest());

        let mut echo = EchoService::default();
        echo.apply(&req(b"ping".to_vec()));
        let mut fresh = EchoService::default();
        assert!(fresh.restore(&echo.snapshot()));
        assert_eq!(fresh.state_digest(), echo.state_digest());

        let mut kv = KvService::default();
        kv.apply(&req(KvOp::Put(b"a".to_vec(), b"1".to_vec()).encode()));
        kv.apply(&req(KvOp::Put(b"b".to_vec(), b"2".to_vec()).encode()));
        kv.apply(&req(KvOp::Del(b"a".to_vec()).encode()));
        let mut fresh = KvService::default();
        assert!(fresh.restore(&kv.snapshot()));
        assert_eq!(fresh.get(b"b"), Some(&b"2".to_vec()));
        assert_eq!(fresh.state_digest(), kv.state_digest());
    }

    #[test]
    fn malformed_snapshots_rejected_without_mutation() {
        let mut counter = CounterService::default();
        counter.apply(&req(b"inc".to_vec()));
        assert!(!counter.restore(b"short"));
        assert_eq!(counter.value(), 1, "failed restore must not mutate");

        let mut kv = KvService::default();
        kv.apply(&req(KvOp::Put(b"k".to_vec(), b"v".to_vec()).encode()));
        let before = kv.state_digest();
        assert!(!kv.restore(b"garbage-bytes"));
        let mut truncated = kv.snapshot();
        truncated.pop();
        assert!(!kv.restore(&truncated));
        let mut trailing = kv.snapshot();
        trailing.push(0);
        assert!(!kv.restore(&trailing));
        assert_eq!(kv.state_digest(), before);
    }
}
