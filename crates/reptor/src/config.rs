//! Replica-group configuration.

use bft_crypto::CryptoCostModel;
use simnet::{DiskSpec, Nanos};

/// Configuration of the per-replica persistence layer (durable checkpoint
/// snapshots plus a write-ahead log of executed batches on a simulated
/// local drive). `None` in [`ReptorConfig::durability`] keeps replicas
/// fully volatile — every restart rebuilds from peers, the pre-durability
/// behavior, byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Append every executed batch to the CRC-framed WAL.
    pub wal: bool,
    /// Write a compacting snapshot every this many *stable* checkpoints.
    pub snapshot_every: u64,
    /// Cost model of the simulated local drive.
    pub device: DiskSpec,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            wal: true,
            snapshot_every: 4,
            device: DiskSpec::nvme(),
        }
    }
}

/// Static configuration shared by every replica in the group.
#[derive(Debug, Clone)]
pub struct ReptorConfig {
    /// Number of replicas (`n = 3f + 1`).
    pub n: usize,
    /// Maximum requests per agreement batch (paper §II-B: "requests in BFT
    /// protocols are often batched").
    pub batch_size: usize,
    /// Maximum concurrently active agreement instances (the watermark
    /// window `L`).
    pub window: usize,
    /// A checkpoint is taken every `checkpoint_interval` sequence numbers.
    pub checkpoint_interval: u64,
    /// Number of COP agreement pipelines (parallel whole-protocol
    /// instances, Behl et al. \[10\]). Pipeline `s % pillars` owns sequence
    /// number `s` and runs its pre-prepare/prepare/commit state machine on
    /// its own core (`simnet::CoreAffinity` maps lanes onto cores `1..`,
    /// leaving core 0 for the sequential executor stage).
    pub pillars: usize,
    /// Backup timer before suspecting the primary and starting a view
    /// change.
    pub view_change_timeout: Nanos,
    /// One-sided fast path: the leader proposes by RDMA WRITE into
    /// per-view follower slot regions instead of sending PRE-PREPARE
    /// messages. Requires a transport with a one-sided write primitive;
    /// the message path remains the per-peer fallback. Off by default so
    /// existing deployments and traces are bit-identical.
    pub fast_path: bool,
    /// Agreement-free reads: each replica exposes its applied-state
    /// region under an epoch-rkey read lease so clients can serve reads
    /// with one-sided RDMA READs, bypassing agreement. Requires a
    /// transport with a one-sided read primitive and a service exposing a
    /// read-region image; message-path reads remain the fallback. Off by
    /// default so existing deployments and traces are bit-identical.
    pub read_leases: bool,
    /// Cryptographic CPU cost model.
    pub crypto: CryptoCostModel,
    /// Local persistence layer. `None` (the default) keeps the replica
    /// volatile; `Some` arms the WAL + snapshot store and the
    /// crash-consistent cold path in `Replica::restart`.
    pub durability: Option<DurabilityConfig>,
}

impl ReptorConfig {
    /// A small `f = 1` group (4 replicas), the classic PBFT setup.
    pub fn small() -> ReptorConfig {
        ReptorConfig {
            n: 4,
            batch_size: 10,
            window: 30,
            checkpoint_interval: 64,
            pillars: 3,
            view_change_timeout: Nanos::from_millis(40),
            fast_path: false,
            read_leases: false,
            crypto: CryptoCostModel::xeon_v2_java(),
            durability: None,
        }
    }

    /// A group tolerating `f` faults (`n = 3f + 1`).
    pub fn for_f(f: usize) -> ReptorConfig {
        ReptorConfig {
            n: 3 * f + 1,
            ..ReptorConfig::small()
        }
    }

    /// The number of tolerated faults `f = (n - 1) / 3`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size for prepared/committed certificates (`2f`).
    pub fn prepare_quorum(&self) -> usize {
        2 * self.f()
    }

    /// Commit quorum (`2f + 1` including the replica itself).
    pub fn commit_quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// The primary of `view`.
    pub fn primary(&self, view: u64) -> u32 {
        (view % self.n as u64) as u32
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 4`, `n = 3f + 1`, and batching/window/pillar
    /// parameters are positive.
    pub fn validate(&self) {
        assert!(self.n >= 4, "BFT needs n >= 4 (got {})", self.n);
        assert_eq!(self.n, 3 * self.f() + 1, "n must be 3f + 1");
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.window > 0, "window must be positive");
        assert!(self.checkpoint_interval > 0, "checkpoint interval positive");
        assert!(self.pillars > 0, "pillars must be positive");
    }
}

impl Default for ReptorConfig {
    fn default() -> ReptorConfig {
        ReptorConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorums_match_pbft() {
        let c = ReptorConfig::small();
        c.validate();
        assert_eq!(c.f(), 1);
        assert_eq!(c.prepare_quorum(), 2);
        assert_eq!(c.commit_quorum(), 3);
        let c7 = ReptorConfig::for_f(2);
        c7.validate();
        assert_eq!(c7.n, 7);
        assert_eq!(c7.commit_quorum(), 5);
    }

    #[test]
    fn primary_rotates_with_view() {
        let c = ReptorConfig::small();
        assert_eq!(c.primary(0), 0);
        assert_eq!(c.primary(1), 1);
        assert_eq!(c.primary(4), 0);
        assert_eq!(c.primary(7), 3);
    }

    #[test]
    #[should_panic(expected = "n must be 3f + 1")]
    fn non_3f1_rejected() {
        let c = ReptorConfig {
            n: 5,
            ..ReptorConfig::small()
        };
        c.validate();
    }
}
