//! The BFT client: submits requests and waits for a quorum of matching
//! replies (`f + 1` by default; layers with stricter freshness needs can
//! raise it, see [`Client::set_reply_quorum`]).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use bft_crypto::KeyTable;
use simnet::{Nanos, Simulator};

use crate::config::ReptorConfig;
use crate::messages::{ClientId, Message, ReplicaId, Request, SignedMessage};
use crate::transport::Transport;

/// Client statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed (a reply quorum of matching replies).
    pub completed: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
    /// Replies dropped for failing MAC verification.
    pub bad_mac_dropped: u64,
}

/// One finished request, as recorded by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The request timestamp.
    pub timestamp: u64,
    /// The agreed result.
    pub result: Vec<u8>,
    /// Submission time.
    pub submitted_at: Nanos,
    /// Completion time.
    pub completed_at: Nanos,
}

impl Completion {
    /// End-to-end request latency.
    pub fn latency(&self) -> Nanos {
        self.completed_at - self.submitted_at
    }
}

/// Handler for verified non-Reply messages addressed to a client
/// (see [`Client::set_aux_handler`]).
pub type AuxHandler = Rc<dyn Fn(&mut Simulator, Message)>;

struct PendingReq {
    request: Request,
    replies: HashMap<ReplicaId, Vec<u8>>,
    submitted_at: Nanos,
    retries: u32,
}

struct ClientInner {
    id: ClientId,
    cfg: ReptorConfig,
    keys: KeyTable,
    transport: Rc<dyn Transport>,
    next_ts: u64,
    pending: HashMap<u64, PendingReq>,
    completions: Vec<Completion>,
    resend_timeout: Nanos,
    max_retries: u32,
    /// Matching replies required to complete a request. `f + 1` (the PBFT
    /// minimum: one honest replica executed) unless raised.
    reply_quorum: usize,
    stats: ClientStats,
    aux_handler: Option<AuxHandler>,
}

/// A closed-loop BFT client.
#[derive(Clone)]
pub struct Client {
    inner: Rc<RefCell<ClientInner>>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Client")
            .field("id", &inner.id)
            .field("pending", &inner.pending.len())
            .field("completed", &inner.stats.completed)
            .finish()
    }
}

impl Client {
    /// Creates a client with node id `id` (above the replica range).
    pub fn new(
        id: ClientId,
        cfg: ReptorConfig,
        domain_secret: &[u8],
        transport: Rc<dyn Transport>,
    ) -> Client {
        assert!(
            id >= cfg.n as u32,
            "client ids must lie above the replica id range"
        );
        let client = Client {
            inner: Rc::new(RefCell::new(ClientInner {
                id,
                keys: KeyTable::new(id, domain_secret.to_vec()),
                resend_timeout: cfg.view_change_timeout * 3 / 2,
                reply_quorum: cfg.f() + 1,
                cfg,
                transport: transport.clone(),
                next_ts: 1,
                pending: HashMap::new(),
                completions: Vec::new(),
                max_retries: 20,
                stats: ClientStats::default(),
                aux_handler: None,
            })),
        };
        let c = client.clone();
        transport.set_delivery(Rc::new(move |sim, _from, bytes| {
            c.on_raw(sim, bytes);
        }));
        client
    }

    /// This client's node id.
    pub fn id(&self) -> ClientId {
        self.inner.borrow().id
    }

    /// Statistics.
    pub fn stats(&self) -> ClientStats {
        self.inner.borrow().stats
    }

    /// Finished requests in completion order.
    pub fn completions(&self) -> Vec<Completion> {
        self.inner.borrow().completions.clone()
    }

    /// Requests still awaiting a quorum of replies.
    pub fn pending_count(&self) -> usize {
        self.inner.borrow().pending.len()
    }

    /// Raises the matching-reply quorum a request needs to complete.
    ///
    /// `f + 1` (the default) proves one honest replica executed the
    /// request — enough when every observation travels the agreement
    /// path. A quorum of `2f + 1` additionally proves `f + 1` *honest*
    /// replicas executed it before the client saw the result, which is
    /// what agreement-bypassing readers (the KV one-sided read path)
    /// need: any two `f + 1`-honest sets intersect, so state observed
    /// by a completed operation can never later vanish from a quorum.
    ///
    /// # Panics
    ///
    /// Panics unless `f + 1 <= quorum <= n`.
    pub fn set_reply_quorum(&self, quorum: usize) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            quorum > inner.cfg.f() && quorum <= inner.cfg.n,
            "reply quorum must lie in f+1 ..= n"
        );
        inner.reply_quorum = quorum;
    }

    /// Installs a handler for verified non-Reply messages addressed to
    /// this client (e.g. [`Message::LeaseGrant`]). Layers like the KV
    /// read-path client use it to ride the existing delivery plumbing.
    pub fn set_aux_handler(&self, handler: AuxHandler) {
        self.inner.borrow_mut().aux_handler = Some(handler);
    }

    /// Sends an arbitrary signed message to one replica (lease queries).
    pub fn send_to_replica(&self, sim: &mut Simulator, replica: ReplicaId, msg: &Message) {
        let (bytes, transport) = {
            let inner = self.inner.borrow();
            let signed = SignedMessage::create(msg, &inner.keys, &[replica]);
            (signed.encode(), inner.transport.clone())
        };
        transport.send(sim, replica, bytes);
    }

    /// Submits an operation to the replicated service; returns its
    /// timestamp. The client broadcasts to all replicas (backups use it to
    /// arm their view-change timers) and retransmits until a reply quorum
    /// of matching replies arrives.
    pub fn submit(&self, sim: &mut Simulator, payload: Vec<u8>) -> u64 {
        let (ts, request) = {
            let mut inner = self.inner.borrow_mut();
            let ts = inner.next_ts;
            inner.next_ts += 1;
            let request = Request {
                client: inner.id,
                timestamp: ts,
                payload,
            };
            inner.pending.insert(
                ts,
                PendingReq {
                    request: request.clone(),
                    replies: HashMap::new(),
                    submitted_at: sim.now(),
                    retries: 0,
                },
            );
            inner.stats.submitted += 1;
            (ts, request)
        };
        self.send_request(sim, &request);
        self.arm_resend(sim, ts);
        ts
    }

    fn send_request(&self, sim: &mut Simulator, request: &Request) {
        let (signed, transport, replicas) = {
            let inner = self.inner.borrow();
            let replicas: Vec<u32> = (0..inner.cfg.n as u32).collect();
            let signed =
                SignedMessage::create(&Message::Request(request.clone()), &inner.keys, &replicas);
            (signed, inner.transport.clone(), replicas)
        };
        let bytes = signed.encode();
        for r in replicas {
            transport.send(sim, r, bytes.clone());
        }
    }

    fn arm_resend(&self, sim: &mut Simulator, ts: u64) {
        let timeout = self.inner.borrow().resend_timeout;
        let client = self.clone();
        sim.schedule_in(
            timeout,
            Box::new(move |sim| {
                let request = {
                    let mut inner = client.inner.borrow_mut();
                    let max = inner.max_retries;
                    match inner.pending.get_mut(&ts) {
                        Some(p) if p.retries < max => {
                            p.retries += 1;
                            let req = p.request.clone();
                            inner.stats.retransmissions += 1;
                            Some(req)
                        }
                        _ => None,
                    }
                };
                if let Some(req) = request {
                    client.send_request(sim, &req);
                    client.arm_resend(sim, ts);
                }
            }),
        );
    }

    fn on_raw(&self, sim: &mut Simulator, bytes: Vec<u8>) {
        let Ok(signed) = SignedMessage::decode(&bytes) else {
            return;
        };
        let msg = {
            let mut inner = self.inner.borrow_mut();
            match signed.verify_and_decode(&inner.keys) {
                Ok(Some(m)) => m,
                Ok(None) => {
                    inner.stats.bad_mac_dropped += 1;
                    return;
                }
                Err(_) => return,
            }
        };
        let Message::Reply {
            timestamp,
            replica,
            result,
            ..
        } = msg
        else {
            // Verified non-Reply traffic (lease grants, ...) goes to the
            // auxiliary handler if one is installed.
            let handler = self.inner.borrow().aux_handler.clone();
            if let Some(h) = handler {
                h(sim, msg);
            }
            return;
        };
        let completed = {
            let mut inner = self.inner.borrow_mut();
            let quorum = inner.reply_quorum;
            let Some(p) = inner.pending.get_mut(&timestamp) else {
                return; // already completed or unknown
            };
            p.replies.insert(replica, result.clone());
            let matching = p.replies.values().filter(|r| **r == result).count();
            if matching >= quorum {
                let p = inner.pending.remove(&timestamp).expect("present");
                let completion = Completion {
                    timestamp,
                    result,
                    submitted_at: p.submitted_at,
                    completed_at: sim.now(),
                };
                inner.completions.push(completion);
                inner.stats.completed += 1;
                true
            } else {
                false
            }
        };
        let _ = completed;
    }
}
