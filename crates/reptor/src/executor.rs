//! The deterministic COP executor stage.
//!
//! Agreement runs in `p` parallel pipelines, but the replicated service is
//! a sequential state machine: results must not depend on which pipeline
//! commits first. The executor enforces COP's total-order rule — commit
//! *execution* strictly by sequence number: instance `s` is applied only
//! after every instance `< s` has been applied, regardless of commit
//! order across pipelines. Because `seq mod p` statically names the
//! owning pipeline, the executor never scans: it polls exactly one
//! pipeline per step, the owner of `last_executed + 1`.
//!
//! Execution (and everything downstream of it — service application,
//! checkpoint digests, client replies) is charged to the dedicated
//! execution core (core 0) by the replica, keeping the sequential stage
//! off the agreement cores.

use bft_crypto::Digest;
use simnet::Nanos;

use crate::messages::{Request, SeqNum};
use crate::pipeline::Pipeline;

/// A committed instance handed from a pipeline to the execution stage.
#[derive(Debug)]
pub(crate) struct ExecutableBatch {
    pub(crate) seq: SeqNum,
    pub(crate) batch: Vec<Request>,
    /// When the instance committed (feeds `phase.committed_to_executed`).
    pub(crate) committed_at: Option<Nanos>,
}

/// Totally orders committed batches across pipelines before the service
/// sees them.
#[derive(Debug, Default)]
pub(crate) struct Executor {
    /// Highest contiguously executed sequence number.
    pub(crate) last_executed: SeqNum,
    /// Executed history `(seq, batch digest)` — the safety witness used by
    /// tests.
    pub(crate) executed_log: Vec<(SeqNum, Digest)>,
}

impl Executor {
    pub(crate) fn new() -> Executor {
        Executor::default()
    }

    /// The sequence number the executor will apply next.
    pub(crate) fn next_seq(&self) -> SeqNum {
        self.last_executed + 1
    }

    /// Jumps the execution horizon to `seq` after a completed state
    /// transfer: everything at or below `seq` is embodied in the installed
    /// checkpoint, so the per-instance history is skipped. The executed
    /// log keeps a gap — the safety witness only compares digests at
    /// sequence numbers both replicas actually executed.
    pub(crate) fn fast_forward(&mut self, seq: SeqNum) {
        debug_assert!(seq >= self.last_executed);
        self.last_executed = seq;
    }

    /// Records one batch replayed from the durable WAL: the batch was
    /// committed by agreement before it was logged, so replay re-enters it
    /// into the executed history (safety witness included) without going
    /// through a pipeline.
    pub(crate) fn replay_record(&mut self, seq: SeqNum, digest: Digest) {
        debug_assert_eq!(seq, self.next_seq(), "WAL replay must be contiguous");
        self.last_executed = seq;
        self.executed_log.push((seq, digest));
    }

    /// Pops the next batch in total order, if its owning pipeline has
    /// committed it: marks the instance executed, advances the execution
    /// horizon and appends to the safety witness. Returns `None` while the
    /// head-of-line instance is still in agreement (later seqs may already
    /// be committed in other pipelines — they wait their turn).
    pub(crate) fn pop_ready(&mut self, pipelines: &mut [Pipeline]) -> Option<ExecutableBatch> {
        let next = self.next_seq();
        let lane = (next % pipelines.len() as u64) as usize;
        debug_assert!(pipelines[lane].owns(next, pipelines.len()));
        let entry = pipelines[lane].log.get_mut(&next)?;
        if !entry.committed || entry.executed {
            return None;
        }
        entry.executed = true;
        let digest = entry.digest.expect("committed instance has digest");
        let batch = entry.batch.clone().expect("committed instance has batch");
        let committed_at = entry.committed_at;
        self.last_executed = next;
        self.executed_log.push((next, digest));
        Some(ExecutableBatch {
            seq: next,
            batch,
            committed_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Instance;
    use simnet::CoreId;

    fn committed(seq: SeqNum) -> Instance {
        Instance {
            digest: Some(Digest::of_parts(&[&seq.to_le_bytes()])),
            batch: Some(vec![]),
            pre_prepared: true,
            prepared: true,
            committed: true,
            ..Instance::default()
        }
    }

    #[test]
    fn executes_in_total_order_across_pipelines() {
        let mut pls = vec![Pipeline::new(0, CoreId(1)), Pipeline::new(1, CoreId(2))];
        let mut ex = Executor::new();
        // Pipeline 0 commits seq 2 before pipeline 1 commits seq 1: the
        // executor must still emit 1 then 2.
        pls[0].install(2, committed(2));
        assert!(ex.pop_ready(&mut pls).is_none(), "seq 1 not committed yet");
        pls[1].install(1, committed(1));
        assert_eq!(ex.pop_ready(&mut pls).expect("seq 1").seq, 1);
        assert_eq!(ex.pop_ready(&mut pls).expect("seq 2").seq, 2);
        assert!(ex.pop_ready(&mut pls).is_none());
        assert_eq!(ex.last_executed, 2);
        assert_eq!(ex.executed_log.len(), 2);
    }

    #[test]
    fn head_of_line_blocks_later_commits() {
        let mut pls = vec![
            Pipeline::new(0, CoreId(1)),
            Pipeline::new(1, CoreId(2)),
            Pipeline::new(2, CoreId(3)),
        ];
        let mut ex = Executor::new();
        // Seqs 2 and 3 committed, 1 missing: nothing executes.
        pls[2].install(2, committed(2));
        pls[0].install(3, committed(3));
        assert!(ex.pop_ready(&mut pls).is_none());
        pls[1].install(1, committed(1));
        let order: Vec<SeqNum> =
            std::iter::from_fn(|| ex.pop_ready(&mut pls).map(|b| b.seq)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
