//! Per-pipeline PBFT agreement state — the unit of Consensus-Oriented
//! Parallelization.
//!
//! COP partitions the sequence-number space statically: pipeline `l` of
//! `p` owns every instance with `seq mod p == l` and runs a complete,
//! independent pre-prepare/prepare/commit state machine for them, pinned
//! to its own simulated core. Nothing here does I/O or touches shared
//! replica state: a [`Pipeline`] is a pure agreement-state container, so
//! two pipelines can make progress in overlapping simulated time with the
//! only cross-pipeline coupling being the executor's total order
//! ([`crate::executor::Executor`]) and the shared view/checkpoint
//! coordination in [`crate::replica::Replica`].

use std::collections::{BTreeMap, HashSet};

use bft_crypto::Digest;
use simnet::{CoreId, Nanos};

use crate::messages::{ReplicaId, Request, SeqNum, View};

/// Agreement state of one sequence number.
#[derive(Debug, Default)]
pub(crate) struct Instance {
    pub(crate) view: View,
    pub(crate) digest: Option<Digest>,
    pub(crate) batch: Option<Vec<Request>>,
    pub(crate) pre_prepared: bool,
    pub(crate) prepares: HashSet<ReplicaId>,
    pub(crate) commits: HashSet<ReplicaId>,
    pub(crate) prepared: bool,
    pub(crate) committed: bool,
    pub(crate) executed: bool,
    /// Phase timestamps feeding the `reptor.r{id}.phase.*` histograms.
    pub(crate) pre_prepared_at: Option<Nanos>,
    pub(crate) prepared_at: Option<Nanos>,
    pub(crate) committed_at: Option<Nanos>,
}

/// Public per-pipeline progress counters (tests, benchmarks, chaos
/// scenarios asserting that pipelines advance independently).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// The pipeline index (`seq mod p == index`).
    pub pipeline: usize,
    /// The simulated core this pipeline's agreement work runs on.
    pub core: u16,
    /// Instances that reached the committed state in this pipeline.
    pub committed: u64,
    /// Instances currently live in this pipeline's log.
    pub in_log: usize,
}

/// One COP agreement pipeline: a disjoint slice of sequence-number space
/// with its own protocol log and core affinity.
#[derive(Debug)]
pub(crate) struct Pipeline {
    /// This pipeline's index within `0..p`.
    pub(crate) idx: usize,
    /// The simulated core agreement work for this pipeline is charged to.
    pub(crate) core: CoreId,
    /// The per-pipeline agreement log (only seqs owned by this pipeline).
    pub(crate) log: BTreeMap<SeqNum, Instance>,
    /// Instances committed by this pipeline (monotone counter).
    pub(crate) committed: u64,
}

impl Pipeline {
    pub(crate) fn new(idx: usize, core: CoreId) -> Pipeline {
        Pipeline {
            idx,
            core,
            log: BTreeMap::new(),
            committed: 0,
        }
    }

    /// True if this pipeline owns `seq` under a `lanes`-way partition.
    pub(crate) fn owns(&self, seq: SeqNum, lanes: usize) -> bool {
        (seq % lanes as u64) as usize == self.idx
    }

    /// Snapshot of this pipeline's progress counters.
    pub(crate) fn stats(&self) -> PipelineStats {
        PipelineStats {
            pipeline: self.idx,
            core: self.core.0,
            committed: self.committed,
            in_log: self.log.len(),
        }
    }

    /// Backup-side acceptance of a PRE-PREPARE. Returns true if the
    /// instance was (re)initialized and this replica's own prepare vote
    /// recorded; false on a duplicate or conflicting proposal (kept: the
    /// first one wins, a Byzantine conflict starves the quorum and the
    /// request timer triggers a view change). The caller stamps
    /// `pre_prepared_at` (it also settles request-arrival latencies).
    pub(crate) fn accept_pre_prepare(
        &mut self,
        view: View,
        seq: SeqNum,
        digest: Digest,
        batch: Vec<Request>,
        me: ReplicaId,
    ) -> bool {
        let entry = self.log.entry(seq).or_default();
        if entry.pre_prepared && entry.view == view {
            return false;
        }
        if view > entry.view || !entry.pre_prepared {
            *entry = Instance {
                view,
                digest: Some(digest),
                batch: Some(batch),
                pre_prepared: true,
                ..Instance::default()
            };
        }
        entry.prepares.insert(me);
        true
    }

    /// Installs an instance wholesale (primary's own proposal, NEW-VIEW
    /// re-proposals, catch-up certificates), overwriting prior state.
    pub(crate) fn install(&mut self, seq: SeqNum, inst: Instance) -> &mut Instance {
        let entry = self.log.entry(seq).or_default();
        *entry = inst;
        entry
    }

    /// Records a PREPARE vote. Returns false if the vote is for a digest
    /// conflicting with the accepted pre-prepare (dropped).
    pub(crate) fn add_prepare(
        &mut self,
        view: View,
        seq: SeqNum,
        digest: Digest,
        replica: ReplicaId,
    ) -> bool {
        let entry = self.log.entry(seq).or_default();
        if entry.pre_prepared && entry.digest != Some(digest) {
            return false;
        }
        entry.view = entry.view.max(view);
        entry.prepares.insert(replica);
        true
    }

    /// Checks the prepared predicate: pre-prepared plus a `quorum` of
    /// prepare votes. On the transition it records this replica's own
    /// commit vote and returns the digest plus the pre-prepare→prepared
    /// latency; `None` if not (or already) prepared.
    pub(crate) fn try_prepare(
        &mut self,
        seq: SeqNum,
        quorum: usize,
        me: ReplicaId,
        now: Nanos,
    ) -> Option<(Digest, Option<u64>)> {
        let entry = self.log.get_mut(&seq)?;
        if entry.prepared || !entry.pre_prepared || entry.prepares.len() < quorum {
            return None;
        }
        entry.prepared = true;
        entry.prepared_at = Some(now);
        entry.commits.insert(me);
        let digest = entry.digest.expect("prepared instance has a digest");
        let since_pp = entry
            .pre_prepared_at
            .map(|t| now.as_nanos().saturating_sub(t.as_nanos()));
        Some((digest, since_pp))
    }

    /// Records a COMMIT vote. Returns false on a conflicting digest.
    pub(crate) fn add_commit(&mut self, seq: SeqNum, digest: Digest, replica: ReplicaId) -> bool {
        let entry = self.log.entry(seq).or_default();
        if entry.pre_prepared && entry.digest != Some(digest) {
            return false;
        }
        entry.commits.insert(replica);
        true
    }

    /// Checks the committed predicate: prepared plus a `quorum` of commit
    /// votes. On the transition it returns the prepared→committed latency
    /// observation; `None` if not (or already) committed.
    #[allow(clippy::option_option)]
    pub(crate) fn try_commit(
        &mut self,
        seq: SeqNum,
        quorum: usize,
        now: Nanos,
    ) -> Option<Option<u64>> {
        let entry = self.log.get_mut(&seq)?;
        if entry.committed || !entry.prepared || entry.commits.len() < quorum {
            return None;
        }
        entry.committed = true;
        entry.committed_at = Some(now);
        self.committed += 1;
        let since_prep = entry
            .prepared_at
            .map(|t| now.as_nanos().saturating_sub(t.as_nanos()));
        Some(since_prep)
    }

    /// Drops every instance at or below the stable checkpoint `seq`;
    /// returns how many entries were freed.
    pub(crate) fn truncate_through(&mut self, seq: SeqNum) -> u64 {
        let before = self.log.len();
        self.log.retain(|&s, _| s > seq);
        (before - self.log.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> Digest {
        Digest::of_parts(&[&[tag]])
    }

    #[test]
    fn ownership_partitions_seq_space() {
        let p0 = Pipeline::new(0, CoreId(1));
        let p1 = Pipeline::new(1, CoreId(2));
        assert!(p0.owns(2, 2) && p0.owns(4, 2));
        assert!(p1.owns(1, 2) && p1.owns(3, 2));
        assert!(!p0.owns(3, 2));
    }

    #[test]
    fn prepare_commit_quorum_transitions() {
        let mut pl = Pipeline::new(0, CoreId(1));
        let d = digest(1);
        let now = Nanos::from_nanos(5);
        assert!(pl.accept_pre_prepare(0, 2, d, vec![], 1));
        // Duplicate pre-prepare in the same view is rejected.
        assert!(!pl.accept_pre_prepare(0, 2, d, vec![], 1));
        assert!(pl.add_prepare(0, 2, d, 2));
        // Quorum of 2 (own vote + replica 2) flips prepared exactly once.
        let (got, _) = pl.try_prepare(2, 2, 1, now).expect("prepared");
        assert_eq!(got, d);
        assert!(pl.try_prepare(2, 2, 1, now).is_none());
        assert!(pl.add_commit(2, d, 2));
        assert!(pl.add_commit(2, d, 3));
        assert!(pl.try_commit(2, 3, now).is_some());
        assert_eq!(pl.committed, 1);
        assert!(pl.try_commit(2, 3, now).is_none());
    }

    #[test]
    fn conflicting_votes_are_dropped() {
        let mut pl = Pipeline::new(0, CoreId(1));
        assert!(pl.accept_pre_prepare(0, 2, digest(1), vec![], 0));
        assert!(!pl.add_prepare(0, 2, digest(9), 2));
        assert!(!pl.add_commit(2, digest(9), 2));
    }

    #[test]
    fn truncate_frees_only_old_instances() {
        let mut pl = Pipeline::new(0, CoreId(1));
        for seq in [2u64, 4, 6] {
            pl.accept_pre_prepare(0, seq, digest(seq as u8), vec![], 0);
        }
        assert_eq!(pl.truncate_through(4), 2);
        assert_eq!(pl.log.len(), 1);
        assert!(pl.log.contains_key(&6));
    }
}
