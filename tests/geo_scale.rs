//! Scale-out geo scenarios: replica groups spread across WAN latency
//! matrices, clients packed many-per-host, and fault composition on WAN
//! links.
//!
//! The cheap variants run in the regular test suite. The `#[ignore]`d
//! tests are the scale tier — n = 31 groups and the thousand-client
//! scenario — run in release mode by the CI `scale` job
//! (`cargo test --release --test geo_scale -- --ignored`), where they
//! take seconds instead of the minutes they would need under the debug
//! profile in the fast `build-and-test` job.

use reptor::{Cluster, CounterService, ReptorConfig};
use simnet::{HostId, LatencyMatrix, Nanos};

fn geo(n: usize, clients: usize, client_hosts: usize, seed: u64, topo: &LatencyMatrix) -> Cluster {
    let cfg = ReptorConfig {
        n,
        ..ReptorConfig::small()
    };
    Cluster::sim_transport_geo(cfg, clients, client_hosts, seed, topo, || {
        Box::new(CounterService::default())
    })
}

/// Submits `per_client` requests from every client, runs to completion,
/// and checks agreement plus the safety cross-check.
fn drive(c: &mut Cluster, per_client: u64, max_events: u64) {
    let clients = c.clients.clone();
    for client in &clients {
        for _ in 0..per_client {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
    }
    assert!(
        c.run_until_completed(per_client, max_events),
        "geo cluster must reach agreement"
    );
    for (i, client) in c.clients.iter().enumerate() {
        assert_eq!(
            client.stats().completed,
            per_client,
            "client {i} must see every request commit"
        );
    }
    c.assert_safety();
}

#[test]
fn wan3_group_commits_across_regions() {
    let topo = LatencyMatrix::three_region_wan();
    let mut c = geo(4, 2, 1, 11, &topo);
    // The geo constructor must raise aggressive LAN timeouts to the
    // topology's floor, or WAN RTTs trigger spurious view changes.
    assert!(c.cfg.view_change_timeout >= topo.suggested_timeout());
    let t0 = c.sim.now();
    drive(&mut c, 3, 20_000_000);
    // Commit latency is bounded below by one cross-region round trip.
    let min_hop = topo.one_way(0, 1).min(topo.one_way(1, 0));
    assert!(
        c.sim.now() - t0 >= min_hop,
        "WAN commit cannot beat the speed of light"
    );
}

#[test]
fn clients_share_hosts_without_interfering() {
    // 48 clients on 3 shared hosts: the node directory multiplexes
    // several transport endpoints per host via distinct ports.
    let topo = LatencyMatrix::lan();
    let mut c = geo(4, 48, 3, 13, &topo);
    drive(&mut c, 1, 20_000_000);
}

#[test]
fn wan_partition_composes_with_geo_links() {
    // Cutting one backup's region link must not block agreement (f = 1),
    // and healing lets follow-up traffic complete on the same timeline.
    let topo = LatencyMatrix::three_region_wan();
    let mut c = geo(4, 1, 1, 17, &topo);
    let victim = HostId(3);
    c.net.with_faults(|f| {
        for h in 0..3u32 {
            f.partition(HostId(h), victim);
        }
    });
    drive(&mut c, 2, 40_000_000);
    c.net.with_faults(|f| {
        for h in 0..3u32 {
            f.heal(HostId(h), victim);
        }
    });
    let client = c.clients[0].clone();
    client.submit(&mut c.sim, b"inc".to_vec());
    assert!(
        c.run_until_completed(3, 40_000_000),
        "post-heal request must commit"
    );
    c.assert_safety();
}

#[test]
fn geo_runs_replay_byte_identically() {
    // Reorder jitter on a WAN link makes the timeline genuinely
    // seed-dependent (a fault-free run consumes no randomness at all),
    // so this checks both chaos-on-WAN composition and replay.
    let topo = LatencyMatrix::three_region_wan();
    let snap = |seed| {
        let mut c = geo(4, 2, 1, seed, &topo);
        c.net.with_faults(|f| {
            f.set_reorder_jitter(HostId(0), HostId(1), Nanos::from_micros(200));
            f.set_reorder_jitter(HostId(1), HostId(0), Nanos::from_micros(200));
        });
        drive(&mut c, 2, 20_000_000);
        c.settle();
        c.metrics_snapshot().to_json()
    };
    assert_eq!(snap(23), snap(23), "same seed must replay byte-identically");
    assert_ne!(snap(23), snap(24), "different seeds must not collide");
}

/// Scale tier: the full 31-replica group (f = 10) spread over three
/// regions. Run by the CI `scale` job in release mode.
#[test]
#[ignore = "scale tier: run in release via the CI scale job"]
fn wan3_31_replica_group_commits() {
    let topo = LatencyMatrix::three_region_wan();
    let mut c = geo(31, 2, 1, 31, &topo);
    let t0 = c.sim.now();
    drive(&mut c, 4, 400_000_000);
    assert!(
        c.sim.now() > t0,
        "simulated time must advance across WAN rounds"
    );
    // The sharded event core should have absorbed the n^2 message load
    // without the tombstone population outgrowing the live one.
    let q = c.sim.queue_stats();
    assert!(q.scheduled > 10_000, "31-replica rounds are event-heavy");
    assert!(q.tombstones <= q.pending.max(64));
}

/// Scale tier: a thousand clients packed onto eight shared hosts drive a
/// seven-replica WAN group. Run by the CI `scale` job in release mode.
#[test]
#[ignore = "scale tier: run in release via the CI scale job"]
fn thousand_clients_share_eight_hosts() {
    let topo = LatencyMatrix::three_region_wan();
    let mut c = geo(7, 1_000, 8, 1_000, &topo);
    drive(&mut c, 1, 2_000_000_000);
    let done: u64 = c.clients.iter().map(|cl| cl.stats().completed).sum();
    assert_eq!(done, 1_000, "all thousand clients commit");
    // Determinism survives the scale-out shape: pending-event high water
    // is a deterministic function of the seed.
    let hw = c.sim.queue_stats().high_water;
    assert!(hw > 100, "a thousand in-flight clients pile up events");
}

#[test]
fn one_way_latency_floor_is_visible_per_region_pair() {
    // The asymmetric matrix is observable end to end: ping across the
    // slower direction takes measurably longer than the faster one.
    let topo = LatencyMatrix::three_region_wan();
    assert_ne!(topo.one_way(0, 2), topo.one_way(2, 0));
    let mut c = geo(7, 1, 1, 29, &topo);
    drive(&mut c, 1, 20_000_000);
    let q = c.sim.queue_stats();
    assert!(q.run_hits + q.merges > 0, "pop-path counters are live");
}
