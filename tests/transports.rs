//! Transport-layer integration tests: the NIO-TCP and RUBIN-RDMA meshes
//! that carry Reptor's replica communication, exercised directly.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{NioTransport, RubinTransport, Transport};
use rubin::RubinConfig;
use simnet::{CoreId, HostId, Nanos, Simulator, TestBed};
use simnet_socket::TcpModel;

type Log = Rc<RefCell<Vec<(u32, u32, Vec<u8>)>>>;
type MeshFn = fn(usize, u64) -> (Simulator, Vec<Rc<dyn Transport>>);

fn wire_log(transports: &[Rc<dyn Transport>]) -> Log {
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    for t in transports {
        let me = t.node();
        let l = log.clone();
        t.set_delivery(Rc::new(move |_sim, from, bytes| {
            l.borrow_mut().push((from, me, bytes));
        }));
    }
    log
}

fn nio_mesh(n: usize, seed: u64) -> (Simulator, Vec<Rc<dyn Transport>>) {
    let (mut sim, net, hosts) = TestBed::cluster(seed, n);
    let nodes: Vec<(u32, HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let ts = NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon());
    sim.run_until_idle();
    (
        sim,
        ts.into_iter()
            .map(|t| Rc::new(t) as Rc<dyn Transport>)
            .collect(),
    )
}

fn rubin_mesh(n: usize, seed: u64) -> (Simulator, Vec<Rc<dyn Transport>>) {
    let (mut sim, net, hosts) = TestBed::cluster(seed, n);
    let nodes: Vec<(u32, HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let ts = RubinTransport::build_group(
        &mut sim,
        &net,
        &nodes,
        RnicModel::mt27520(),
        RubinConfig::paper(),
    );
    sim.run_until_idle();
    (
        sim,
        ts.into_iter()
            .map(|t| Rc::new(t) as Rc<dyn Transport>)
            .collect(),
    )
}

fn full_mesh_exchange(sim: &mut Simulator, ts: &[Rc<dyn Transport>]) {
    let log = wire_log(ts);
    let n = ts.len() as u32;
    // Every node sends one distinct message to every other node.
    for t in ts {
        for peer in 0..n {
            if peer != t.node() {
                let msg = format!("from-{}-to-{}", t.node(), peer).into_bytes();
                t.send(sim, peer, msg);
            }
        }
    }
    sim.run_until_idle();
    let log = log.borrow();
    assert_eq!(log.len() as u32, n * (n - 1), "all pairs delivered");
    for (from, to, bytes) in log.iter() {
        assert_eq!(bytes, format!("from-{from}-to-{to}").as_bytes());
    }
}

#[test]
fn nio_mesh_all_pairs_deliver() {
    let (mut sim, ts) = nio_mesh(5, 31);
    full_mesh_exchange(&mut sim, &ts);
}

#[test]
fn rubin_mesh_all_pairs_deliver() {
    let (mut sim, ts) = rubin_mesh(5, 32);
    full_mesh_exchange(&mut sim, &ts);
}

fn ordering_preserved(sim: &mut Simulator, ts: &[Rc<dyn Transport>]) {
    let log = wire_log(ts);
    for i in 0..200u32 {
        ts[0].send(sim, 1, i.to_le_bytes().to_vec());
    }
    sim.run_until_idle();
    let log = log.borrow();
    let seq: Vec<u32> = log
        .iter()
        .filter(|(f, t, _)| *f == 0 && *t == 1)
        .map(|(_, _, b)| u32::from_le_bytes(b.clone().try_into().expect("4 bytes")))
        .collect();
    assert_eq!(seq.len(), 200);
    assert!(
        seq.windows(2).all(|w| w[0] + 1 == w[1]),
        "per-peer FIFO ordering violated"
    );
}

#[test]
fn nio_transport_preserves_order() {
    let (mut sim, ts) = nio_mesh(2, 33);
    ordering_preserved(&mut sim, &ts);
}

#[test]
fn rubin_transport_preserves_order() {
    let (mut sim, ts) = rubin_mesh(2, 34);
    ordering_preserved(&mut sim, &ts);
}

fn large_messages_flow(sim: &mut Simulator, ts: &[Rc<dyn Transport>]) {
    // 100 KB messages exceed socket buffers (NIO) and use big slabs
    // (RUBIN); several in a row exercise backpressure queues.
    let log = wire_log(ts);
    let payload: Vec<u8> = (0..100 * 1024usize).map(|i| (i % 241) as u8).collect();
    for _ in 0..6 {
        ts[0].send(sim, 1, payload.clone());
    }
    sim.run_until_idle();
    let log = log.borrow();
    assert_eq!(log.len(), 6);
    assert!(
        log.iter().all(|(_, _, b)| *b == payload),
        "payload integrity"
    );
}

#[test]
fn nio_transport_moves_large_messages() {
    let (mut sim, ts) = nio_mesh(2, 35);
    large_messages_flow(&mut sim, &ts);
}

#[test]
fn rubin_transport_moves_large_messages() {
    let (mut sim, ts) = rubin_mesh(2, 36);
    large_messages_flow(&mut sim, &ts);
}

#[test]
fn rubin_transport_is_faster_than_nio_for_small_messages() {
    let elapsed = |mk: MeshFn| -> Nanos {
        let (mut sim, ts) = mk(2, 37);
        let log = wire_log(&ts);
        let start = sim.now();
        // Ping-pong 50 one-KB messages.
        for _ in 0..50 {
            ts[0].send(&mut sim, 1, vec![1u8; 1024]);
            sim.run_until_idle();
        }
        assert_eq!(log.borrow().len(), 50);
        sim.now() - start
    };
    let rdma = elapsed(rubin_mesh);
    let tcp = elapsed(nio_mesh);
    assert!(
        rdma < tcp,
        "RDMA transport ({rdma}) must beat TCP transport ({tcp})"
    );
}

#[test]
fn rubin_selector_multiplexes_many_peers_on_one_thread() {
    // Seven nodes, one selector each; node 0 talks to all six peers; the
    // single reactor must interleave them all (paper §III: the selector
    // handles numerous channels in a single thread).
    let (mut sim, ts) = rubin_mesh(7, 38);
    let log = wire_log(&ts);
    for round in 0..10u8 {
        for peer in 1..7u32 {
            ts[0].send(&mut sim, peer, vec![round; 512]);
        }
    }
    sim.run_until_idle();
    let log = log.borrow();
    let mut per_peer: HashMap<u32, usize> = HashMap::new();
    for (from, to, _) in log.iter() {
        assert_eq!(*from, 0);
        *per_peer.entry(*to).or_default() += 1;
    }
    assert_eq!(per_peer.len(), 6);
    assert!(per_peer.values().all(|&c| c == 10));
}

#[test]
fn transports_carry_interleaved_bidirectional_traffic() {
    for mk in [
        nio_mesh as fn(usize, u64) -> (Simulator, Vec<Rc<dyn Transport>>),
        rubin_mesh,
    ] {
        let (mut sim, ts) = mk(3, 39);
        let log = wire_log(&ts);
        for i in 0..30u32 {
            ts[(i % 3) as usize].send(&mut sim, (i + 1) % 3, vec![i as u8; 64]);
        }
        sim.run_until_idle();
        assert_eq!(log.borrow().len(), 30);
    }
}
