//! Integration tests spanning the whole workspace: PBFT agreement driven
//! over each of the three comm stacks (direct fabric, NIO-TCP, RUBIN-RDMA)
//! — the paper's end goal of an RDMA-enabled BFT protocol, exercised end
//! to end.

use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{
    ByzantineMode, Client, CounterService, NioTransport, Replica, ReptorConfig, RubinTransport,
    Transport, DOMAIN_SECRET,
};
use rubin::RubinConfig;
use simnet::{CoreId, HostId, Network, Simulator, TestBed};
use simnet_socket::TcpModel;

enum StackKind {
    Nio,
    Rubin,
}

struct World {
    sim: Simulator,
    net: Network,
    replicas: Vec<Replica>,
    client: Client,
}

fn build(kind: StackKind, seed: u64) -> World {
    let cfg = ReptorConfig::small();
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(seed, n + 1);
    let nodes: Vec<(u32, HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let transports: Vec<Rc<dyn Transport>> = match kind {
        StackKind::Nio => NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon())
            .into_iter()
            .map(|t| Rc::new(t) as Rc<dyn Transport>)
            .collect(),
        StackKind::Rubin => RubinTransport::build_group(
            &mut sim,
            &net,
            &nodes,
            RnicModel::mt27520(),
            RubinConfig::paper(),
        )
        .into_iter()
        .map(|t| Rc::new(t) as Rc<dyn Transport>)
        .collect(),
    };
    // Let the mesh establish before the protocol starts.
    sim.run_until_idle();

    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                Box::new(CounterService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg, DOMAIN_SECRET, transports[n].clone());
    World {
        sim,
        net,
        replicas,
        client,
    }
}

fn run_to_completion(w: &mut World, want: u64) {
    let mut guard: u64 = 0;
    while w.client.stats().completed < want {
        assert!(w.sim.step(), "simulation went idle before completion");
        guard += 1;
        assert!(guard < 20_000_000, "agreement stalled");
    }
}

fn assert_total_order(replicas: &[Replica]) {
    let logs: Vec<_> = replicas.iter().map(Replica::executed_log).collect();
    for a in &logs {
        for b in &logs {
            for (sa, da) in a {
                for (sb, db) in b {
                    if sa == sb {
                        assert_eq!(da, db, "divergent execution at seq {sa}");
                    }
                }
            }
        }
    }
}

#[test]
fn bft_counter_over_nio_tcp_stack() {
    let mut w = build(StackKind::Nio, 101);
    let client = w.client.clone();
    for _ in 0..10 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 10);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 10, "replica {}", r.id());
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 10u64.to_le_bytes());
}

#[test]
fn bft_counter_over_rubin_rdma_stack() {
    let mut w = build(StackKind::Rubin, 102);
    let client = w.client.clone();
    for _ in 0..10 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 10);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 10, "replica {}", r.id());
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 10u64.to_le_bytes());
}

#[test]
fn rdma_stack_commits_faster_than_tcp_stack() {
    // The paper's motivation end to end: agreement latency over RUBIN must
    // beat agreement latency over the NIO TCP stack.
    let latency = |kind: StackKind| {
        let mut w = build(kind, 103);
        let client = w.client.clone();
        for _ in 0..10 {
            client.submit(&mut w.sim, b"inc".to_vec());
        }
        run_to_completion(&mut w, 10);
        let comps = client.completions();
        let total: u128 = comps.iter().map(|c| c.latency().as_nanos() as u128).sum();
        total / comps.len() as u128
    };
    let tcp = latency(StackKind::Nio);
    let rdma = latency(StackKind::Rubin);
    assert!(
        rdma < tcp,
        "RDMA agreement ({rdma}ns) must beat TCP agreement ({tcp}ns)"
    );
}

#[test]
fn byzantine_leader_tolerated_over_rubin_stack() {
    let mut w = build(StackKind::Rubin, 104);
    w.replicas[0].set_byzantine(ByzantineMode::SilentPrimary);
    let client = w.client.clone();
    client.submit(&mut w.sim, b"inc".to_vec());
    run_to_completion(&mut w, 1);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas[1..] {
        assert!(r.view() >= 1, "view change must have happened");
    }
}

#[test]
fn crashed_replica_tolerated_over_nio_stack() {
    let mut w = build(StackKind::Nio, 105);
    w.replicas[2].set_byzantine(ByzantineMode::Crash);
    let client = w.client.clone();
    for _ in 0..5 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 5);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    assert_eq!(w.replicas[0].stats().executed_requests, 5);
    let _ = &w.net;
}
