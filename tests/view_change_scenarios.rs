//! Deep view-change scenarios: cascading faulty primaries, re-proposal of
//! prepared-but-uncommitted batches, rejection of forged NEW-VIEWs, and
//! the interaction of view changes with checkpoints.

use reptor::{
    batch_digest, ByzantineMode, Cluster, CounterService, Message, ReptorConfig, Request,
};

fn cluster(seed: u64, cfg: ReptorConfig) -> Cluster {
    Cluster::sim_transport(cfg, 1, seed, || Box::new(CounterService::default()))
}

#[test]
fn cascading_faulty_primaries_are_skipped() {
    // Views 0 and 1 both have silent primaries; the group must reach a
    // view whose primary is correct (view >= 2) and then make progress.
    let mut c = cluster(71, ReptorConfig::small());
    c.replicas[0].set_byzantine(ByzantineMode::SilentPrimary);
    c.replicas[1].set_byzantine(ByzantineMode::SilentPrimary);
    let client = c.clients[0].clone();
    for _ in 0..3 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(
        c.run_until_completed(3, 15_000_000),
        "progress must resume under a correct primary"
    );
    c.settle();
    c.assert_safety();
    for r in &c.replicas[2..] {
        assert!(
            r.view() >= 2,
            "replica {} stuck in view {}",
            r.id(),
            r.view()
        );
    }
    // The metrics registry recorded the cascade: every correct replica
    // voted for at least the two view changes it sat through, and the
    // trace carries the view-change events.
    let snap = c.metrics_snapshot();
    for r in &c.replicas[2..] {
        let vc = snap.counter(&format!("reptor.r{}.view_changes", r.id()));
        assert!(
            vc >= 2,
            "replica {} counted {vc} view changes, expected >= 2",
            r.id()
        );
        assert_eq!(
            vc,
            r.stats().view_changes_sent,
            "registry and ReplicaStats must agree for replica {}",
            r.id()
        );
    }
    assert!(
        snap.trace
            .iter()
            .any(|ev| ev.layer == "reptor" && ev.event.contains("view_change")),
        "trace ring must carry the view-change events"
    );
}

#[test]
fn view_change_replays_prepared_batches_without_duplication() {
    // Run a workload across a forced view change; every request must
    // execute exactly once even if its batch was re-proposed.
    let mut c = cluster(72, ReptorConfig::small());
    let client = c.clients[0].clone();
    // Warm up in view 0.
    for _ in 0..4 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(4, 2_000_000));
    // Now the primary goes silent mid-stream.
    c.replicas[0].set_byzantine(ByzantineMode::SilentPrimary);
    for _ in 0..4 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(8, 15_000_000));
    c.settle();
    c.assert_safety();
    // Exactly-once execution shows up as the correct final counter value.
    let max = client
        .completions()
        .iter()
        .map(|cm| u64::from_le_bytes(cm.result.clone().try_into().unwrap()))
        .max()
        .unwrap();
    assert_eq!(
        max, 8,
        "each inc applied exactly once across the view change"
    );
    for r in &c.replicas[1..] {
        assert_eq!(r.stats().executed_requests, 8, "replica {}", r.id());
    }
}

#[test]
fn forged_new_view_with_bad_digest_is_rejected() {
    // A replica receiving a NEW-VIEW whose digests do not bind the batches
    // must ignore it and stay in its current view.
    let mut c = cluster(73, ReptorConfig::small());
    let client = c.clients[0].clone();
    client.submit(&mut c.sim, b"inc".to_vec());
    assert!(c.run_until_completed(1, 1_000_000));
    c.settle();

    let forged_batch = vec![Request {
        client: 99,
        timestamp: 1,
        payload: b"forged".to_vec(),
    }];
    let wrong_digest = batch_digest(&[]); // does not match forged_batch
    let view_before = c.replicas[2].view();
    // Inject directly into replica 2's handler, bypassing MACs (the worst
    // case: authentication already passed).
    let msg = Message::NewView {
        view: view_before + 1,
        pre_prepares: vec![(100, wrong_digest, forged_batch)],
        replica: ((view_before + 1) % 4) as u32,
    };
    c.replicas[2].inject_message(&mut c.sim, msg);
    c.settle();
    assert_eq!(
        c.replicas[2].view(),
        view_before,
        "forged NEW-VIEW must not install a view"
    );
    c.assert_safety();
}

#[test]
fn new_view_from_wrong_primary_is_rejected() {
    let mut c = cluster(74, ReptorConfig::small());
    let view_before = c.replicas[1].view();
    // Replica 3 is not the primary of view 1 (that is replica 1); replica
    // 2 claims otherwise.
    let msg = Message::NewView {
        view: view_before + 1,
        pre_prepares: vec![],
        replica: 3, // not primary(view 1)
    };
    c.replicas[2].inject_message(&mut c.sim, msg);
    c.settle();
    assert_eq!(c.replicas[2].view(), view_before);
}

#[test]
fn stale_view_messages_are_ignored() {
    // After moving to view 1, messages from view 0 must be dropped.
    let mut c = cluster(75, ReptorConfig::small());
    c.replicas[0].set_byzantine(ByzantineMode::SilentPrimary);
    let client = c.clients[0].clone();
    client.submit(&mut c.sim, b"inc".to_vec());
    assert!(c.run_until_completed(1, 10_000_000));
    c.settle();
    let r2_view = c.replicas[2].view();
    assert!(r2_view >= 1);
    let executed_before = c.replicas[2].last_executed();
    // A stale PRE-PREPARE from the deposed view-0 primary.
    let msg = Message::PrePrepare {
        view: 0,
        seq: 50,
        digest: batch_digest(&[]),
        batch: vec![],
    };
    c.replicas[2].inject_message(&mut c.sim, msg);
    c.settle();
    assert_eq!(c.replicas[2].view(), r2_view, "view unchanged");
    assert_eq!(c.replicas[2].last_executed(), executed_before);
}

#[test]
fn checkpoints_continue_after_view_change() {
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        batch_size: 1,
        ..ReptorConfig::small()
    };
    let mut c = cluster(76, cfg);
    c.replicas[0].set_byzantine(ByzantineMode::SilentPrimary);
    let client = c.clients[0].clone();
    for _ in 0..10 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(10, 20_000_000));
    c.settle();
    c.assert_safety();
    for r in &c.replicas[1..] {
        assert!(
            r.low_mark() >= 4,
            "replica {} checkpointing stalled after view change (low mark {})",
            r.id(),
            r.low_mark()
        );
    }
    // Checkpoint garbage collection actually freed log entries, and the
    // registry agrees with the per-replica stats.
    let snap = c.metrics_snapshot();
    for r in &c.replicas[1..] {
        let stable = snap.counter(&format!("reptor.r{}.checkpoints_stable", r.id()));
        let freed = snap.counter(&format!("reptor.r{}.checkpoint_gc_freed", r.id()));
        assert!(stable >= 1, "replica {} stabilised no checkpoint", r.id());
        assert_eq!(stable, r.stats().stable_checkpoints, "replica {}", r.id());
        assert!(
            freed >= 4,
            "replica {} freed only {freed} log entries at its checkpoints",
            r.id()
        );
    }
    assert!(
        snap.trace
            .iter()
            .any(|ev| ev.layer == "reptor" && ev.event.contains("checkpoint_stable")),
        "trace ring must carry the checkpoint events"
    );
}

#[test]
fn seven_replicas_survive_two_cascading_silent_primaries() {
    let cfg = ReptorConfig::for_f(2);
    let mut c = cluster(77, cfg);
    c.replicas[0].set_byzantine(ByzantineMode::SilentPrimary);
    c.replicas[1].set_byzantine(ByzantineMode::Crash);
    let client = c.clients[0].clone();
    for _ in 0..3 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(3, 25_000_000));
    c.settle();
    c.assert_safety();
    for r in &c.replicas[2..] {
        assert!(r.view() >= 2, "replica {} in view {}", r.id(), r.view());
        assert_eq!(r.stats().executed_requests, 3);
    }
}
