//! Durable-restart chaos scenarios: crash-consistent recovery from the
//! simulated local drive under injected storage faults.
//!
//! Where `chaos_scenarios.rs` exercises *network* adversity, these
//! scenarios treat the storage layer itself as the adversary, following
//! the torn-write fault model: a replica's drive survives its crash, but
//! the bytes on it may be torn mid-frame, bit-flipped, or silently lost
//! after the ack. The durability layer must always recover a clean
//! prefix — never panic, never install wrong state — and fetch only the
//! missing delta from peers.
//!
//! Every scenario is seeded from `CHAOS_SEED` (CI sweeps 1–5) and
//! replays byte-identically, asserted over the full metrics snapshot.

use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{
    ByzantineMode, Client, CounterService, DurabilityConfig, KvOp, KvService, NioTransport,
    Replica, ReptorConfig, RubinTransport, StateMachine, Transport, DOMAIN_SECRET, SLOT_BYTES,
};
use rubin::RubinConfig;
use simnet::{
    ChaosAction, ChaosSchedule, CoreId, DiskFault, DiskSpec, HostId, Nanos, Network, Simulator,
    TestBed,
};
use simnet_socket::TcpModel;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[derive(Clone, Copy)]
enum StackKind {
    Nio,
    Rubin,
}

struct World {
    sim: Simulator,
    net: Network,
    hosts: Vec<HostId>,
    replicas: Vec<Replica>,
    client: Client,
}

fn durable_cfg(snapshot_every: u64) -> ReptorConfig {
    ReptorConfig {
        checkpoint_interval: 4,
        durability: Some(DurabilityConfig {
            wal: true,
            snapshot_every,
            device: DiskSpec::nvme(),
        }),
        ..ReptorConfig::small()
    }
}

fn build(
    kind: StackKind,
    seed: u64,
    cfg: ReptorConfig,
    service: impl Fn() -> Box<dyn StateMachine>,
) -> World {
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(seed, n + 1);
    let nodes: Vec<(u32, HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let transports: Vec<Rc<dyn Transport>> = match kind {
        StackKind::Nio => NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon())
            .into_iter()
            .map(|t| Rc::new(t) as Rc<dyn Transport>)
            .collect(),
        StackKind::Rubin => RubinTransport::build_group(
            &mut sim,
            &net,
            &nodes,
            RnicModel::mt27520(),
            RubinConfig::paper(),
        )
        .into_iter()
        .map(|t| Rc::new(t) as Rc<dyn Transport>)
        .collect(),
    };
    sim.run_until_idle();
    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                service(),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg, DOMAIN_SECRET, transports[n].clone());
    World {
        sim,
        net,
        hosts,
        replicas,
        client,
    }
}

fn run_to_completion(w: &mut World, want: u64) {
    let mut guard: u64 = 0;
    while w.client.stats().completed < want {
        assert!(w.sim.step(), "simulation went idle before completion");
        guard += 1;
        assert!(guard < 20_000_000, "agreement stalled");
    }
}

/// One request per agreement instance, so checkpoint-interval arithmetic
/// stays exact (see `chaos_scenarios.rs`).
fn submit_sequentially(w: &mut World, payloads: &[Vec<u8>], already_done: u64) {
    let client = w.client.clone();
    for (i, p) in payloads.iter().enumerate() {
        client.submit(&mut w.sim, p.clone());
        run_to_completion(w, already_done + i as u64 + 1);
    }
}

fn incs(n: usize) -> Vec<Vec<u8>> {
    vec![b"inc".to_vec(); n]
}

fn assert_total_order(replicas: &[Replica]) {
    let logs: Vec<_> = replicas.iter().map(Replica::executed_log).collect();
    for a in &logs {
        for b in &logs {
            for (sa, da) in a {
                for (sb, db) in b {
                    if sa == sb {
                        assert_eq!(da, db, "divergent execution at seq {sa}");
                    }
                }
            }
        }
    }
}

fn assert_converged(w: &World) {
    assert_total_order(&w.replicas);
    let digests: Vec<_> = w
        .replicas
        .iter()
        .map(|r| r.with_service(|s| s.state_digest()))
        .collect();
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "replica application state must converge");
    }
    let le0 = w.replicas[0].last_executed();
    for r in &w.replicas {
        assert_eq!(r.last_executed(), le0, "replica {} position", r.id());
    }
}

/// Schedules a crash of replica `idx` (host power-off + fail-silent mode)
/// at `at`. Does not advance the simulation — the full-cluster scenario
/// installs several crashes at the same instant before running.
fn crash_at(w: &mut World, idx: usize, at: Nanos) {
    ChaosSchedule::new()
        .at(at, ChaosAction::CrashHost { host: w.hosts[idx] })
        .install(&mut w.sim, &w.net);
    let v = w.replicas[idx].clone();
    w.sim.schedule_at(
        at,
        Box::new(move |_sim| {
            v.set_byzantine(ByzantineMode::Crash);
        }),
    );
}

/// Powers the host back on and restarts the replica cold at `at`.
fn restart_at(
    w: &mut World,
    idx: usize,
    at: Nanos,
    service: impl Fn() -> Box<dyn StateMachine> + 'static,
) {
    ChaosSchedule::new()
        .at(at, ChaosAction::RestartHost { host: w.hosts[idx] })
        .install(&mut w.sim, &w.net);
    let v = w.replicas[idx].clone();
    w.sim.schedule_at(
        at,
        Box::new(move |sim| {
            v.restart(sim, service());
        }),
    );
}

fn put(key: String, val: Vec<u8>) -> Vec<u8> {
    KvOp::Put(key.into_bytes(), val).encode()
}

/// Torn WAL tail: a replica's last log append is torn mid-frame by the
/// crash. Restart must truncate exactly the torn frame, replay the clean
/// prefix locally, and fetch only the missing delta — most checkpoint
/// chunks are satisfied from the locally rebuilt payload, asserted via
/// the `state_transfer_*_local` byte counters.
fn torn_wal_tail_scenario(kind: StackKind, seed: u64) -> String {
    // No snapshot compaction (large `snapshot_every`): the WAL carries
    // the full history, so the torn tail is the only storage damage.
    let mut w = build(kind, seed, durable_cfg(100), || Box::<KvService>::default());
    let victim = w.replicas[1].clone();

    // Seed 40 fixed-size keys: seqs 1..=40, stable checkpoint at 40.
    let seeds: Vec<Vec<u8>> = (0..40)
        .map(|i| put(format!("k{i:03}"), vec![i as u8; 32]))
        .collect();
    submit_sequentially(&mut w, &seeds, 0);
    w.sim.run_until_idle();
    assert_eq!(victim.last_executed(), 40);

    // The next append to the victim's drive tears mid-frame: arm the
    // fault a few bytes past the current end of the log.
    let disk = victim.durable_disk().expect("durability configured");
    disk.arm_fault(DiskFault::TornWrite {
        at_byte: disk.len() + 10,
    });
    submit_sequentially(&mut w, &[put("k000".into(), vec![0xAA; 32])], 40);

    // Power loss. The drive survives; the torn frame 41 is on it.
    let t_crash = w.sim.now() + Nanos::from_micros(100);
    crash_at(&mut w, 1, t_crash);
    w.sim.run_until(t_crash + Nanos::from_micros(1));

    // The live trio updates 8 existing keys (same value sizes, so the
    // checkpoint payload layout stays chunk-aligned): seqs 42..=49,
    // stable checkpoint at 48.
    let updates: Vec<Vec<u8>> = (0..8)
        .map(|i| put(format!("k{i:03}"), vec![0xBB + i as u8; 32]))
        .collect();
    submit_sequentially(&mut w, &updates, 41);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));

    // Power on. Recovery: scan truncates frame 41, replay reaches 40,
    // the re-sealed checkpoint attests the position, and the transfer to
    // 48 fetches only chunks the local payload can't satisfy.
    let t_back = w.sim.now() + Nanos::from_millis(1);
    restart_at(&mut w, 1, t_back, || Box::<KvService>::default());
    w.sim.run_until(t_back + Nanos::from_millis(400));

    let m = w.net.metrics();
    assert!(
        m.counter("reptor.r1.wal_frames_truncated") >= 1,
        "the torn tail must be detected and truncated"
    );
    assert_eq!(
        m.counter("reptor.r1.wal_frames_replayed"),
        40,
        "the clean prefix replays in full"
    );
    assert_eq!(
        m.counter("reptor.r1.durable_restores"),
        0,
        "no snapshot yet"
    );
    assert!(
        victim.stats().state_transfers_completed >= 1,
        "the missing delta still needs a transfer"
    );
    let local = m.counter("reptor.r1.state_transfer_bytes_local");
    let remote = m.counter("reptor.r1.state_transfer_bytes");
    assert!(
        local > 0,
        "locally recovered chunks must satisfy part of the fetch"
    );
    assert!(
        remote > 0,
        "the changed chunks (and the moved client table) still come from \
         peers — the root differs, so at least one chunk must"
    );

    // Tail workload: the recovered replica executes with the group.
    let tail: Vec<Vec<u8>> = (0..3)
        .map(|i| put(format!("t{i:03}"), vec![0xEE; 32]))
        .collect();
    submit_sequentially(&mut w, &tail, 49);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));
    assert_converged(&w);
    m.snapshot().to_json()
}

#[test]
fn torn_wal_tail_recovers_clean_prefix_and_delta_fetches_on_rubin_stack() {
    let json = torn_wal_tail_scenario(StackKind::Rubin, chaos_seed());
    assert!(json.contains("\"reptor.r1.state_transfer_bytes_local\":"));
    assert!(json.contains("\"disk.r1.torn_writes\":1"));
}

#[test]
fn torn_wal_tail_recovers_clean_prefix_and_delta_fetches_on_nio_stack() {
    torn_wal_tail_scenario(StackKind::Nio, chaos_seed());
}

#[test]
fn fixed_seed_torn_tail_timeline_replays_byte_identically() {
    let a = torn_wal_tail_scenario(StackKind::Rubin, chaos_seed());
    let b = torn_wal_tail_scenario(StackKind::Rubin, chaos_seed());
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");
}

/// Bit-flipped snapshot: both snapshot slots of the victim's drive are
/// corrupted in flight. The CRCs catch the damage at restart, recovery
/// counts the fallback and rebuilds entirely from peers — corrupt local
/// state is never installed.
fn bitflip_snapshot_scenario(kind: StackKind, seed: u64) -> String {
    let mut w = build(kind, seed, durable_cfg(1), || {
        Box::<CounterService>::default()
    });
    let victim = w.replicas[1].clone();

    // Every snapshot write to either slot lands with one bit flipped.
    let disk = victim.durable_disk().expect("durability configured");
    disk.arm_fault(DiskFault::BitFlip { at_byte: 20 });
    disk.arm_fault(DiskFault::BitFlip {
        at_byte: SLOT_BYTES + 20,
    });

    // Two stable checkpoints (seqs 4 and 8) → two corrupted snapshots,
    // one per slot; the WAL compacts to empty behind them.
    submit_sequentially(&mut w, &incs(8), 0);
    w.sim.run_until_idle();
    assert_eq!(victim.last_executed(), 8);

    let t_crash = w.sim.now() + Nanos::from_micros(100);
    crash_at(&mut w, 1, t_crash);
    w.sim.run_until(t_crash + Nanos::from_micros(1));
    submit_sequentially(&mut w, &incs(8), 8);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));

    let t_back = w.sim.now() + Nanos::from_millis(1);
    restart_at(&mut w, 1, t_back, || Box::<CounterService>::default());
    w.sim.run_until(t_back + Nanos::from_millis(400));

    let m = w.net.metrics();
    assert!(
        m.counter("reptor.r1.snapshot_corrupt_fallback") >= 1,
        "both slots are corrupt; the fallback must be counted"
    );
    assert_eq!(
        m.counter("reptor.r1.durable_restores"),
        0,
        "no corrupt snapshot may ever be installed"
    );
    assert_eq!(m.counter("disk.r1.bit_flips"), 2);
    assert!(
        victim.stats().state_transfers_completed >= 1,
        "recovery must fall back to peer state transfer"
    );

    submit_sequentially(&mut w, &incs(3), 16);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));
    assert_converged(&w);
    m.snapshot().to_json()
}

#[test]
fn bitflipped_snapshot_falls_back_to_peer_state_transfer() {
    let json = bitflip_snapshot_scenario(StackKind::Rubin, chaos_seed());
    assert!(json.contains("\"reptor.r1.snapshot_corrupt_fallback\":"));
}

/// Crash during snapshot compaction: the snapshot write itself is torn
/// while the WAL compaction that follows it lands. Recovery then sees no
/// valid snapshot and a WAL whose frames start past the snapshot seq —
/// the contiguity check refuses to replay across the gap, and the
/// replica rebuilds from peers instead of installing a wrong prefix.
fn compaction_crash_scenario(kind: StackKind, seed: u64) -> String {
    let mut w = build(kind, seed, durable_cfg(1), || {
        Box::<CounterService>::default()
    });
    let victim = w.replicas[1].clone();

    // The first slot-0 write (the seq-4 snapshot) tears almost at once;
    // the compaction rewrite of the WAL behind it is unaffected.
    let disk = victim.durable_disk().expect("durability configured");
    disk.arm_fault(DiskFault::TornWrite { at_byte: 20 });

    // Seqs 1..=6: stable checkpoint at 4 (torn snapshot + compaction to
    // frames 5..6), then two more appends.
    submit_sequentially(&mut w, &incs(6), 0);
    w.sim.run_until_idle();
    assert_eq!(victim.last_executed(), 6);

    let t_crash = w.sim.now() + Nanos::from_micros(100);
    crash_at(&mut w, 1, t_crash);
    w.sim.run_until(t_crash + Nanos::from_micros(1));
    submit_sequentially(&mut w, &incs(10), 6);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));

    let t_back = w.sim.now() + Nanos::from_millis(1);
    restart_at(&mut w, 1, t_back, || Box::<CounterService>::default());
    w.sim.run_until(t_back + Nanos::from_millis(400));

    let m = w.net.metrics();
    assert!(
        m.counter("reptor.r1.snapshot_corrupt_fallback") >= 1,
        "the torn snapshot slot must be rejected"
    );
    assert_eq!(
        m.counter("reptor.r1.wal_frames_replayed"),
        0,
        "frames past the lost snapshot must not replay across the gap"
    );
    assert_eq!(m.counter("disk.r1.torn_writes"), 1);
    assert!(
        victim.stats().state_transfers_completed >= 1,
        "recovery must fall back to peer state transfer"
    );

    submit_sequentially(&mut w, &incs(3), 16);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));
    assert_converged(&w);
    m.snapshot().to_json()
}

#[test]
fn crash_during_compaction_recovers_safely_from_peers() {
    compaction_crash_scenario(StackKind::Rubin, chaos_seed());
}

/// Whole-cluster power loss: every replica restarts cold from its own
/// drive. Each one installs its snapshot, re-seals and attests the
/// recovered checkpoint, and the group resumes — with zero state-transfer
/// traffic, because nobody is missing anything a peer would have.
fn full_cluster_restart_scenario(kind: StackKind, seed: u64) -> String {
    let mut w = build(kind, seed, durable_cfg(1), || {
        Box::<CounterService>::default()
    });

    // Two stable checkpoints; every replica's drive holds a seq-8
    // snapshot and an empty (compacted) WAL.
    submit_sequentially(&mut w, &incs(8), 0);
    w.sim.run_until_idle();

    // Correlated power failure: all four replica hosts die at once.
    let t_crash = w.sim.now() + Nanos::from_micros(100);
    let n = w.replicas.len();
    for i in 0..n {
        crash_at(&mut w, i, t_crash);
    }
    w.sim.run_until(t_crash + Nanos::from_millis(5));

    // Power restored everywhere; every replica restarts from disk.
    let t_back = w.sim.now() + Nanos::from_millis(1);
    for i in 0..n {
        restart_at(&mut w, i, t_back, || Box::<CounterService>::default());
    }
    // Let the mesh re-dial and the recovered checkpoint votes certify.
    w.sim.run_until(t_back + Nanos::from_millis(400));

    let m = w.net.metrics();
    for r in &w.replicas {
        assert_eq!(
            r.last_executed(),
            8,
            "replica {} must recover its position from disk",
            r.id()
        );
        assert_eq!(
            m.counter(&format!("reptor.r{}.durable_restores", r.id())),
            1
        );
        assert_eq!(
            r.stats().state_transfers_started,
            0,
            "replica {} must not fetch anything from peers",
            r.id()
        );
        assert_eq!(
            m.counter(&format!("reptor.r{}.state_transfer_bytes", r.id())),
            0,
            "zero peer fetch bytes on replica {}",
            r.id()
        );
    }

    // The recovered group serves new traffic.
    submit_sequentially(&mut w, &incs(3), 8);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));
    assert_converged(&w);
    let last = w.client.completions().last().unwrap().result.clone();
    assert_eq!(last, 11u64.to_le_bytes(), "no increment lost or doubled");
    m.snapshot().to_json()
}

#[test]
fn full_cluster_restarts_from_disk_with_zero_peer_fetches_on_rubin_stack() {
    let json = full_cluster_restart_scenario(StackKind::Rubin, chaos_seed());
    assert!(json.contains("\"reptor.r0.durable_restores\":1"));
}

#[test]
fn full_cluster_restarts_from_disk_with_zero_peer_fetches_on_nio_stack() {
    full_cluster_restart_scenario(StackKind::Nio, chaos_seed());
}

#[test]
fn fixed_seed_full_cluster_restart_replays_byte_identically() {
    let a = full_cluster_restart_scenario(StackKind::Rubin, chaos_seed());
    let b = full_cluster_restart_scenario(StackKind::Rubin, chaos_seed());
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");
}

/// A replica that crashes twice must not start its second rejoin at the
/// max backoff tier: the backoff counter resets when a state transfer
/// completes (and on every restart), so both outages converge on the
/// same schedule.
#[test]
fn second_crash_rejoins_without_inherited_backoff() {
    // Volatile replicas: every restart takes the full peer-transfer
    // path, which is exactly the backoff machinery under test.
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let mut w = build(StackKind::Rubin, chaos_seed(), cfg, || {
        Box::<CounterService>::default()
    });
    let victim = w.replicas[1].clone();

    let mut done = 0u64;
    for round in 0..2u64 {
        submit_sequentially(&mut w, &incs(3), done);
        done += 3;
        w.sim.run_until_idle();

        let t_crash = w.sim.now() + Nanos::from_micros(100);
        crash_at(&mut w, 1, t_crash);
        w.sim.run_until(t_crash + Nanos::from_micros(1));
        submit_sequentially(&mut w, &incs(12), done);
        done += 12;
        w.sim.run_until(w.sim.now() + Nanos::from_millis(100));

        let t_back = w.sim.now() + Nanos::from_millis(1);
        restart_at(&mut w, 1, t_back, || Box::<CounterService>::default());
        w.sim.run_until(t_back + Nanos::from_millis(400));
        assert!(
            victim.stats().state_transfers_completed > round,
            "rejoin {round} must complete a state transfer promptly — an \
             inherited backoff tier would stall it past the drill window"
        );
    }
    submit_sequentially(&mut w, &incs(3), done);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));
    assert_converged(&w);
}
