//! Counter-asserted stack invariants: the cross-layer metrics registry
//! must prove, not just suggest, the paper's core claims about the two
//! comm stacks.
//!
//! * The RUBIN/RDMA data path performs **zero** kernel copies and
//!   **zero** kernel crossings — data moves by NIC DMA only (§II/§IV).
//! * The socket path pays exactly **two** kernel copies (user→kernel at
//!   the sender, kernel→user at the receiver) and at least two kernel
//!   crossings per message.
//! * A quiescent RDMA run (receives always pre-posted) sees no RNR
//!   retries.
//! * The whole stack is deterministic: a fixed seed reproduces the
//!   metrics snapshot byte for byte, phase counters included.

use std::cell::RefCell;
use std::rc::Rc;

use bench::fig3;
use rdma_verbs::RnicModel;
use reptor::{Cluster, CounterService, NodeId, ReptorConfig, RubinTransport, Transport};
use rubin::RubinConfig;
use simnet::metrics::validate_json;
use simnet::{CoreId, HostId, TestBed};

const PAYLOAD: usize = 4096;
const MSGS: usize = 10;

#[test]
fn rdma_data_path_has_zero_kernel_copies_and_zero_crossings() {
    let (_, snap) = fig3::channel_echo_instrumented(PAYLOAD, MSGS, RubinConfig::paper());

    // The data path never enters the kernel: no socket-buffer copies, no
    // syscalls, no interrupts.
    assert_eq!(
        snap.total("kernel_copies"),
        0,
        "RDMA path must not copy via the kernel"
    );
    assert_eq!(snap.total("kernel_copy_bytes"), 0);
    assert_eq!(snap.total("syscalls"), 0, "RDMA path must not syscall");
    assert_eq!(
        snap.total("interrupts"),
        0,
        "RDMA path must not take interrupts"
    );
    assert_eq!(snap.total("kernel_crossings"), 0);

    // The bytes still moved — by DMA, off the CPU.
    assert!(
        snap.total("dma_transfers") > 0,
        "payloads must move via DMA"
    );
    assert!(
        snap.total("dma_bytes") >= (2 * MSGS * PAYLOAD) as u64,
        "every echoed payload crosses the wire twice via DMA"
    );
}

#[test]
fn lossy_rdma_run_still_moves_every_byte_by_dma_with_zero_kernel_crossings() {
    // Frame loss forces the RC retransmission path to do real work; the
    // recovery must happen inside the RNIC model — robustness must not
    // silently re-route traffic through the socket cost model.
    let (_, snap) = fig3::channel_echo_lossy_instrumented(PAYLOAD, MSGS, RubinConfig::paper(), 0.1);

    // The fault plane actually dropped frames and the QP recovered them.
    assert!(
        snap.total("faults_dropped") > 0,
        "10% loss must drop at least one frame"
    );
    assert!(
        snap.total("retransmits") > 0,
        "dropped frames must be recovered by RC retransmission"
    );

    // Recovery stayed on the RDMA path: still no kernel involvement.
    assert_eq!(
        snap.total("kernel_copies"),
        0,
        "lossy RDMA path must not copy via the kernel"
    );
    assert_eq!(
        snap.total("syscalls"),
        0,
        "lossy RDMA path must not syscall"
    );
    assert_eq!(snap.total("kernel_crossings"), 0);

    // Every payload still crossed the wire (at least once) by DMA.
    assert!(snap.total("dma_transfers") > 0);
    assert!(
        snap.total("dma_bytes") >= (2 * MSGS * PAYLOAD) as u64,
        "every echoed payload crosses the wire twice via DMA"
    );
}

#[test]
fn quiescent_rdma_run_has_no_rnr_retries() {
    // The RUBIN channel keeps receives pre-posted, so a well-paced echo
    // never hits receiver-not-ready backoff.
    let (_, snap) = fig3::channel_echo_instrumented(PAYLOAD, MSGS, RubinConfig::paper());
    assert_eq!(
        snap.total("rnr_retries"),
        0,
        "quiescent run must not RNR-retry"
    );
    // Sanity: the counters actually ran — sends were posted and completed.
    assert!(snap.total("sends_posted") > 0);
    assert!(snap.total("recvs_completed") > 0);
}

#[test]
fn socket_data_path_pays_exactly_two_copies_and_two_crossings_per_message() {
    let (_, snap) = fig3::tcp_echo_instrumented(PAYLOAD, MSGS);

    // An echo is two messages (request + reply); each message is copied
    // exactly twice: user→kernel on write, kernel→user on read.
    let messages = (2 * MSGS) as u64;
    assert_eq!(
        snap.total("kernel_copies"),
        2 * messages,
        "exactly two kernel copies per message"
    );
    assert_eq!(
        snap.total("kernel_copy_bytes"),
        2 * messages * PAYLOAD as u64,
        "both copies move the full payload"
    );
    // Each message costs at least the write syscall and the read syscall;
    // rx interrupts only add to the total.
    assert!(
        snap.total("kernel_crossings") >= 2 * messages,
        "at least two kernel crossings per message"
    );
    // One write + one read syscall per message at the host layer; the
    // per-socket `tcp.*` mirror counters double the suffix total, which is
    // itself a cross-layer consistency check.
    let host_syscalls = snap.counter("host.h0.syscalls") + snap.counter("host.h1.syscalls");
    assert_eq!(
        host_syscalls,
        2 * messages,
        "one write + one read per message"
    );
    assert_eq!(
        snap.total("syscalls"),
        2 * host_syscalls,
        "per-socket counters must mirror the host counters"
    );

    // No RNIC on this path.
    assert_eq!(snap.total("dma_transfers"), 0);
}

/// One-sided checkpoint reads must cost the responder zero CPU work: the
/// state-transfer fast path registers the checkpoint store as a memory
/// region and lets laggards pull chunks by RDMA READ, so a replica serving
/// state keeps its full agreement throughput (§IV — the one-sided
/// primitive is exactly why the store is exposed via rkey instead of
/// being paged out over request/response messages).
#[test]
fn one_sided_state_read_costs_the_responder_zero_cpu_work() {
    const CHUNK: usize = 4096;
    const CHUNKS: usize = 16;

    let (mut sim, net, hosts) = TestBed::cluster(77, 2);
    let nodes: Vec<(NodeId, HostId, CoreId)> =
        vec![(0, hosts[0], CoreId(0)), (1, hosts[1], CoreId(0))];
    let group = RubinTransport::build_group(
        &mut sim,
        &net,
        &nodes,
        RnicModel::mt27520(),
        RubinConfig::paper(),
    );
    sim.run_until_idle();

    // The responder (node 0) registers a checkpoint-store-sized region.
    let store: Vec<u8> = (0..CHUNK * CHUNKS).map(|i| (i % 251) as u8).collect();
    let offer = group[0]
        .register_state_region(&mut sim, &store)
        .expect("rubin transport offers one-sided reads");
    sim.run_until_idle();

    // Baseline after mesh setup and registration have settled.
    let responder = |name: &str| {
        net.metrics()
            .snapshot()
            .counter(&format!("host.{}.{name}", hosts[0]))
    };
    let cpu_counters = [
        "syscalls",
        "kernel_crossings",
        "interrupts",
        "kernel_copies",
        "user_copies",
    ];
    let before: Vec<u64> = cpu_counters.iter().map(|c| responder(c)).collect();
    let busy_before = net.host(hosts[0]).borrow().total_busy_time();
    let fetcher_dma_before = net
        .metrics()
        .snapshot()
        .counter(&format!("host.{}.dma_transfers", hosts[1]));

    // The fetcher (node 1) pulls the whole store chunk by chunk.
    let got: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    for i in 0..CHUNKS {
        let sink = got.clone();
        let issued = group[1].read_state(
            &mut sim,
            0,
            offer.rkey,
            (i * CHUNK) as u64,
            CHUNK,
            Box::new(move |_sim, bytes| {
                sink.borrow_mut().push(bytes.expect("read must succeed"));
            }),
        );
        assert!(issued, "established rubin channel must accept reads");
        sim.run_until_idle();
    }

    // Every chunk arrived intact.
    let got = got.borrow();
    assert_eq!(got.len(), CHUNKS);
    for (i, chunk) in got.iter().enumerate() {
        assert_eq!(
            chunk.as_slice(),
            &store[i * CHUNK..(i + 1) * CHUNK],
            "chunk {i} must match the registered store"
        );
    }

    // The responder's CPU did zero work per chunk: no syscalls, no kernel
    // crossings, no interrupts, no copies, and not a nanosecond of core
    // busy time — its RNIC DMA-read the store on its own.
    for (name, base) in cpu_counters.iter().zip(&before) {
        assert_eq!(
            responder(name),
            *base,
            "responder {name} must not grow while serving {CHUNKS} reads"
        );
    }
    assert_eq!(
        net.host(hosts[0]).borrow().total_busy_time(),
        busy_before,
        "responder cores must stay idle while its store is read"
    );

    // The bytes really moved — by the fetcher-side DMA into its sink.
    let fetcher_dma = net
        .metrics()
        .snapshot()
        .counter(&format!("host.{}.dma_transfers", hosts[1]));
    assert!(
        fetcher_dma >= fetcher_dma_before + CHUNKS as u64,
        "each chunk lands by DMA at the fetcher"
    );
}

/// Runs a small deterministic PBFT workload and returns its snapshot JSON.
fn bft_snapshot_json(seed: u64) -> String {
    let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, seed, || {
        Box::new(CounterService::default())
    });
    let client = c.clients[0].clone();
    for _ in 0..5 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(
        c.run_until_completed(5, 2_000_000),
        "workload must complete"
    );
    c.settle();
    c.assert_safety();
    c.metrics_snapshot().to_json()
}

#[test]
fn fixed_seed_reproduces_identical_phase_counter_sequences() {
    let a = bft_snapshot_json(1234);
    let b = bft_snapshot_json(1234);
    validate_json(&a).expect("snapshot JSON must be valid");
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");

    // The snapshot carries the per-phase agreement pipeline for every
    // replica: each phase histogram saw every executed batch.
    let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, 1234, || {
        Box::new(CounterService::default())
    });
    let client = c.clients[0].clone();
    for _ in 0..5 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(5, 2_000_000));
    c.settle();
    let snap = c.metrics_snapshot();
    for r in 0..4 {
        let executed = snap.counter(&format!("reptor.r{r}.batches_executed"));
        assert!(executed > 0, "replica {r} executed nothing");
        for phase in [
            "phase.preprepare_to_prepared",
            "phase.prepared_to_committed",
            "phase.committed_to_executed",
        ] {
            let h = snap
                .histogram(&format!("reptor.r{r}.{phase}"))
                .unwrap_or_else(|| panic!("replica {r} missing {phase}"));
            assert_eq!(
                h.count, executed,
                "replica {r} {phase} must see every executed batch"
            );
        }
        assert_eq!(snap.counter(&format!("reptor.r{r}.requests_executed")), 5);
    }
}

#[test]
fn different_seeds_still_execute_the_same_workload() {
    // Timing (and therefore histograms and traces) may differ across
    // seeds, but the logical phase counters are workload-determined.
    let a = bft_snapshot_json(1);
    let b = bft_snapshot_json(2);
    validate_json(&a).expect("valid JSON");
    validate_json(&b).expect("valid JSON");
    // Both runs executed the same five requests on every replica, so the
    // logical counters agree even if the byte-level snapshots do not.
    for json in [&a, &b] {
        assert!(json.contains("\"reptor.r0.requests_executed\":5"));
        assert!(json.contains("\"reptor.r3.requests_executed\":5"));
    }
}

#[test]
fn simulator_health_gauges_are_published_and_consistent() {
    // Every snapshot carries the event-core and buffer-pool gauges the CI
    // counter-drift gate watches across the chaos seed matrix, and they
    // obey the core's own arithmetic.
    let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, 99, || {
        Box::new(CounterService::default())
    });
    let client = c.clients[0].clone();
    for _ in 0..5 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(5, 2_000_000));
    c.settle();
    let snap = c.metrics_snapshot();

    let scheduled = snap.gauge("sim.events_scheduled");
    let executed = snap.gauge("sim.events_executed");
    let cancelled = snap.gauge("sim.events_cancelled");
    let pending = snap.gauge("sim.events_pending");
    assert!(scheduled > 0, "the run scheduled events");
    assert!(executed > 0 && executed <= scheduled);
    // Conservation: every scheduled event is executed, cancelled, or
    // still pending.
    assert_eq!(scheduled, executed + cancelled + pending);
    assert_eq!(pending, 0, "settled simulator has nothing pending");
    assert!(snap.gauge("sim.events_high_water") > 0);
    assert_eq!(snap.gauge("sim.events_shards"), 16);
    // Every pop is either a fenced fast-path hit or a full index merge.
    let pops = snap.gauge("sim.events_run_hits") + snap.gauge("sim.events_merges");
    assert!(pops >= executed, "pop-path counters cover every execution");
    // Tombstones never outlive compaction pressure.
    assert!(snap.gauge("sim.events_tombstones_live") <= scheduled.max(64));

    // Pool gauges are present (zero here: SimTransport bypasses the
    // RNIC buffer pool) and never report phantom leaks.
    assert_eq!(
        snap.gauge("pool.net.takes") - snap.gauge("pool.net.returns"),
        snap.gauge("pool.net.outstanding")
    );
}

#[test]
fn rubin_stack_recycles_pooled_buffers_without_leaking() {
    // The RDMA data path allocates its wire payloads from the network's
    // buffer pool; a settled echo run must return every one.
    let (_, snap) = fig3::channel_echo_instrumented(PAYLOAD, MSGS, RubinConfig::paper());
    let takes = snap.gauge("pool.net.takes");
    let returns = snap.gauge("pool.net.returns");
    let outstanding = snap.gauge("pool.net.outstanding");
    assert!(takes > 0, "the RUBIN path must draw from the buffer pool");
    assert_eq!(takes - returns, outstanding);
    assert!(
        snap.gauge("pool.net.parked") > 0,
        "returned buffers must be parked for reuse"
    );
    assert!(
        takes >= 2 * MSGS as i64,
        "every echoed payload uses pooled buffers both ways"
    );
    // Reuse actually happens: misses (fresh allocations) are strictly
    // fewer than takes once the pool warms up.
    assert!(snap.gauge("pool.net.misses") < takes);
}
