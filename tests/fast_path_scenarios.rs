//! One-sided fast-path agreement scenarios: the current view's leader
//! proposes by RDMA WRITE into per-view follower slot regions instead of
//! sending PRE-PREPARE messages (the paper's thesis applied to the
//! proposal step: RNIC WRITE *permission* replaces the MAC, so the
//! protocol-critical path sheds its per-proposal crypto and messaging
//! work).
//!
//! What these scenarios pin down:
//! * the fast path engages in the common case and commits in exactly two
//!   further one-way network delays after the WRITE lands (the prepare
//!   round and the commit round — no extra round trips were added);
//! * a fixed seed replays the whole fast-path timeline byte-identically;
//! * with `fast_path: false` the replica leaves *zero* trace of the
//!   feature — no slot grants, no regions, no counters — i.e. the
//!   default path is bit-identical to the pre-fast-path replica;
//! * on a transport without a one-sided write primitive (the NIO socket
//!   stack) and across COP pipeline counts, the message path engages
//!   cleanly as the fallback.

use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{
    Client, CounterService, NioTransport, Replica, ReptorConfig, RubinTransport, Transport,
    DOMAIN_SECRET,
};
use rubin::RubinConfig;
use simnet::{CoreId, CpuModel, HostId, LinkSpec, Nanos, Network, Simulator, TestBed};
use simnet_socket::TcpModel;

/// Seed for the scenario timeline; CI sweeps this via the environment.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[derive(Clone, Copy)]
enum StackKind {
    Nio,
    Rubin,
}

struct World {
    sim: Simulator,
    net: Network,
    replicas: Vec<Replica>,
    client: Client,
}

/// A full-mesh world on the given stack. `propagation` overrides the
/// one-way link delay (the 2-delay scenario uses a delay that dwarfs
/// every CPU and serialization cost so hop counts dominate).
fn build(kind: StackKind, seed: u64, cfg: ReptorConfig, propagation: Option<Nanos>) -> World {
    let n = cfg.n;
    let (mut sim, net, hosts) = match propagation {
        None => TestBed::cluster(seed, n + 1),
        Some(d) => {
            let sim = Simulator::new(seed);
            let net = Network::new();
            let hosts: Vec<HostId> = (0..n + 1)
                .map(|i| net.add_host(format!("replica-{i}"), 4, CpuModel::xeon_v2()))
                .collect();
            net.connect_full_mesh(LinkSpec {
                propagation: d,
                ..LinkSpec::ten_gbe()
            });
            (sim, net, hosts)
        }
    };
    let nodes: Vec<(u32, HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let transports: Vec<Rc<dyn Transport>> = match kind {
        StackKind::Nio => NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon())
            .into_iter()
            .map(|t| Rc::new(t) as Rc<dyn Transport>)
            .collect(),
        StackKind::Rubin => RubinTransport::build_group(
            &mut sim,
            &net,
            &nodes,
            RnicModel::mt27520(),
            RubinConfig::paper(),
        )
        .into_iter()
        .map(|t| Rc::new(t) as Rc<dyn Transport>)
        .collect(),
    };
    // Let the mesh establish before traffic starts.
    sim.run_until_idle();

    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                Box::new(CounterService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg, DOMAIN_SECRET, transports[n].clone());
    World {
        sim,
        net,
        replicas,
        client,
    }
}

fn fast_cfg() -> ReptorConfig {
    ReptorConfig {
        fast_path: true,
        ..ReptorConfig::small()
    }
}

fn run_to_completion(w: &mut World, want: u64) {
    let mut guard: u64 = 0;
    while w.client.stats().completed < want {
        assert!(w.sim.step(), "simulation went idle before completion");
        guard += 1;
        assert!(guard < 20_000_000, "agreement stalled");
    }
}

fn assert_total_order(replicas: &[Replica]) {
    let logs: Vec<_> = replicas.iter().map(Replica::executed_log).collect();
    for a in &logs {
        for b in &logs {
            for (sa, da) in a {
                for (sb, db) in b {
                    if sa == sb {
                        assert_eq!(da, db, "divergent execution at seq {sa}");
                    }
                }
            }
        }
    }
}

/// Drives `count` requests one at a time so every request lands in its
/// own agreement instance.
fn submit_sequentially(w: &mut World, count: u64, already_done: u64) {
    let client = w.client.clone();
    for i in 0..count {
        client.submit(&mut w.sim, b"inc".to_vec());
        run_to_completion(w, already_done + i + 1);
    }
}

/// The common case: leader deposits proposals one-sided, followers ring
/// the doorbell and run prepare/commit unchanged. Returns the snapshot
/// JSON for the determinism test.
fn fast_path_commit_scenario(seed: u64) -> String {
    let mut w = build(StackKind::Rubin, seed, fast_cfg(), None);
    let client = w.client.clone();
    for _ in 0..10 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 10);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 10, "replica {}", r.id());
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 10u64.to_le_bytes(), "exactly-once execution");

    // The leader proposed by WRITE and the followers heard doorbells.
    // (The very first batch may predate the grants and ride the message
    // path — that is the fallback working, not the fast path failing.)
    let leader = w.replicas[0].stats();
    assert!(leader.fast_path_writes > 0, "leader must WRITE into slots");
    let deliveries: u64 = w
        .replicas
        .iter()
        .map(|r| r.stats().fast_path_deliveries)
        .sum();
    assert!(deliveries > 0, "followers must deliver from slots");
    let snap = w.net.metrics().snapshot();
    assert!(snap.total("fast_path_grants_sent") >= 3, "followers grant");
    assert_eq!(
        snap.total("fast_path_write_denied"),
        0,
        "no revocation happened, so nothing may be denied"
    );
    snap.to_json()
}

#[test]
fn fast_path_engages_and_commits_exactly_once() {
    fast_path_commit_scenario(chaos_seed());
}

/// The whole fast-path timeline — grants, WRITEs, doorbells, agreement —
/// replays byte-identically from a fixed seed.
#[test]
fn fixed_seed_fast_path_timeline_replays_byte_identically() {
    let a = fast_path_commit_scenario(chaos_seed());
    let b = fast_path_commit_scenario(chaos_seed());
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");
}

/// Once the leader's WRITE lands in a follower slot, commit takes exactly
/// two further one-way network delays: one for the prepare round, one for
/// the commit round. Asserted on a mesh whose 300 µs propagation dwarfs
/// every CPU, MAC and serialization cost, so the phase latencies *are*
/// the hop counts.
#[test]
fn fast_path_commits_two_network_delays_after_the_write_lands() {
    let delay = Nanos::from_micros(300);
    // Keep bandwidth costs negligible relative to the propagation delay.
    let mut w = build(StackKind::Rubin, chaos_seed(), fast_cfg(), Some(delay));
    // First request arms the grants (and may ride the message path);
    // everything after it is the common case under test.
    submit_sequentially(&mut w, 6, 0);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    let deliveries: u64 = w
        .replicas
        .iter()
        .map(|r| r.stats().fast_path_deliveries)
        .sum();
    assert!(deliveries > 0, "the fast path must have engaged");

    let snap = w.net.metrics().snapshot();
    let d = delay.as_nanos();
    let slack = d / 4; // CPU + serialization, generous
    for r in 1..4u32 {
        let prepared = snap
            .histogram(&format!("reptor.r{r}.phase.preprepare_to_prepared"))
            .unwrap_or_else(|| panic!("replica {r} must record prepare-phase latency"));
        assert!(
            prepared.p50 >= d && prepared.p50 <= d + slack,
            "replica {r}: WRITE→prepared must be one network delay \
             (p50 {} vs delay {d})",
            prepared.p50
        );
        let committed = snap
            .histogram(&format!("reptor.r{r}.phase.prepared_to_committed"))
            .unwrap_or_else(|| panic!("replica {r} must record commit-phase latency"));
        assert!(
            committed.p50 >= d && committed.p50 <= d + slack,
            "replica {r}: prepared→committed must be one network delay \
             (p50 {} vs delay {d})",
            committed.p50
        );
    }
}

/// `fast_path: false` must leave zero trace: no slot region registered,
/// no grant sent, no fast-path counter ever created — the snapshot is
/// bit-for-bit what the pre-fast-path replica produced. (CI additionally
/// pins the message-path baseline in the cop-scaling drift gate.)
#[test]
fn disabled_fast_path_leaves_no_trace_in_the_snapshot() {
    let run = |fast: bool| {
        let cfg = ReptorConfig {
            fast_path: fast,
            ..ReptorConfig::small()
        };
        let mut w = build(StackKind::Rubin, chaos_seed(), cfg, None);
        let client = w.client.clone();
        for _ in 0..10 {
            client.submit(&mut w.sim, b"inc".to_vec());
        }
        run_to_completion(&mut w, 10);
        w.sim.run_until_idle();
        assert_total_order(&w.replicas);
        w.net.metrics().snapshot().to_json()
    };
    let off = run(false);
    assert!(
        !off.contains("fast_path") && !off.contains("slot"),
        "disabled fast path must not appear anywhere in the snapshot"
    );
    let off_again = run(false);
    assert_eq!(off, off_again, "disabled runs replay byte-identically");
    // Sanity check that the probe is sharp: the same workload with the
    // fast path on *does* leave the trace.
    assert!(run(true).contains("fast_path_writes"));
}

/// On a transport without a one-sided write primitive the fast path must
/// degrade into the ordinary message path per peer — under both a single
/// COP pipeline and four.
fn message_fallback_scenario(pillars: usize, seed: u64) {
    let cfg = ReptorConfig {
        fast_path: true,
        pillars,
        ..ReptorConfig::small()
    };
    let mut w = build(StackKind::Nio, seed, cfg, None);
    let client = w.client.clone();
    for _ in 0..10 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 10);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 10, "replica {}", r.id());
    }
    let leader = w.replicas[0].stats();
    assert_eq!(
        leader.fast_path_writes, 0,
        "the socket stack has no one-sided write primitive"
    );
    assert!(
        leader.fast_path_fallbacks > 0,
        "every proposal must fall back to the message path"
    );
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 10u64.to_le_bytes());
}

#[test]
fn fallback_engages_cleanly_without_one_sided_writes_single_pipeline() {
    message_fallback_scenario(1, chaos_seed());
}

#[test]
fn fallback_engages_cleanly_without_one_sided_writes_four_pipelines() {
    message_fallback_scenario(4, chaos_seed());
}

/// The fast path composes with COP pipelining: four parallel agreement
/// pipelines, all fed through slot WRITEs, commit the workload in total
/// order.
#[test]
fn fast_path_composes_with_four_cop_pipelines() {
    let cfg = ReptorConfig {
        fast_path: true,
        pillars: 4,
        ..ReptorConfig::small()
    };
    let mut w = build(StackKind::Rubin, chaos_seed(), cfg, None);
    let client = w.client.clone();
    for _ in 0..20 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 20);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 20, "replica {}", r.id());
    }
    let deliveries: u64 = w
        .replicas
        .iter()
        .map(|r| r.stats().fast_path_deliveries)
        .sum();
    assert!(deliveries > 0, "slot deliveries must feed the pipelines");
}
