//! COP determinism and fault-isolation scenarios.
//!
//! Consensus-Oriented Parallelization must not cost any of the simulator's
//! reproducibility guarantees:
//!
//! * a fixed-seed run is byte-identical down to the full metrics snapshot
//!   JSON, whatever the pipeline count;
//! * the executor's total order makes the *outcome* — executed `(seq,
//!   digest)` history and service state — independent of how many
//!   pipelines agreement was split across;
//! * losing one pipeline's traffic stalls exactly that slice of
//!   sequence-number space: the other pipelines keep committing, and the
//!   PR 2 catch-up protocol repairs the gap once the loss heals.

use std::cell::Cell;
use std::rc::Rc;

use reptor::{
    Client, Cluster, CounterService, NodeId, Replica, ReptorConfig, SignedMessage, SimTransport,
    Transport, DOMAIN_SECRET,
};
use simnet::{Simulator, TestBed};

/// A single-client cluster with `pipelines` COP pipelines and unbatched
/// agreement, so request `k` lands at sequence number `k` regardless of
/// pipeline count and runs are comparable across `p`.
fn cop_cluster(seed: u64, pipelines: usize) -> Cluster {
    let cfg = ReptorConfig {
        pillars: pipelines,
        batch_size: 1,
        window: 64,
        ..ReptorConfig::small()
    };
    Cluster::sim_transport(cfg, 1, seed, || Box::new(CounterService::default()))
}

fn run_workload(cluster: &mut Cluster, requests: u64) {
    let client = cluster.clients[0].clone();
    for _ in 0..requests {
        client.submit(&mut cluster.sim, b"inc".to_vec());
    }
    assert!(
        cluster.run_until_completed(requests, 5_000_000),
        "workload must complete"
    );
    cluster.settle();
}

#[test]
fn fixed_seed_p1_metrics_snapshot_is_byte_identical() {
    let run = || {
        let mut c = cop_cluster(0xD5, 1);
        run_workload(&mut c, 16);
        c.metrics_snapshot().to_json()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "fixed-seed p=1 runs must serialize byte-identical snapshots"
    );
}

#[test]
fn fixed_seed_p4_metrics_snapshot_is_byte_identical() {
    let run = || {
        let mut c = cop_cluster(0xD5, 4);
        run_workload(&mut c, 16);
        c.metrics_snapshot().to_json()
    };
    assert_eq!(
        run(),
        run(),
        "fixed-seed p=4 runs must serialize byte-identical snapshots"
    );
}

#[test]
fn executor_total_order_is_independent_of_pipeline_count() {
    const REQUESTS: u64 = 24;
    let mut histories = Vec::new();
    let mut digests = Vec::new();
    for pipelines in [1usize, 2, 4] {
        let mut c = cop_cluster(0xC0B, pipelines);
        run_workload(&mut c, REQUESTS);
        c.assert_safety();
        let log = c.replicas[0].executed_log();
        assert_eq!(log.len() as u64, REQUESTS, "p={pipelines}: all executed");
        // The executed history is gapless and in sequence order.
        for (i, (seq, _)) in log.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1, "p={pipelines}: total order violated");
        }
        // Every replica converged on the same state.
        let state: Vec<_> = c
            .replicas
            .iter()
            .map(|r| r.with_service(|s| s.state_digest()))
            .collect();
        assert!(state.windows(2).all(|w| w[0] == w[1]));
        if pipelines > 1 {
            // Agreement genuinely spread across pipelines.
            let active = c.replicas[0]
                .pipeline_stats()
                .iter()
                .filter(|p| p.committed > 0)
                .count();
            assert_eq!(active, pipelines, "p={pipelines}: idle pipeline");
        }
        histories.push(log);
        digests.push(state[0]);
    }
    // Same committed sequence, same batch digests, same final state — the
    // pipeline count is invisible in the outcome.
    assert!(histories.windows(2).all(|w| w[0] == w[1]));
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
}

// ---------------------------------------------------------------------
// Pipeline-targeted loss
// ---------------------------------------------------------------------

/// Transport wrapper that, while `lossy` is set, drops every *inbound*
/// agreement frame owned by pipeline 0 (`seq % lanes == 0`) — a fault that
/// targets one COP pipeline of one replica while leaving the other lanes
/// untouched.
struct LossyLaneZero {
    inner: SimTransport,
    lanes: usize,
    lossy: Rc<Cell<bool>>,
}

impl Transport for LossyLaneZero {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn send(&self, sim: &mut Simulator, to: NodeId, msg: Vec<u8>) {
        self.inner.send(sim, to, msg);
    }

    fn set_delivery(&self, f: reptor::DeliveryFn) {
        let lossy = self.lossy.clone();
        let lanes = self.lanes as u64;
        self.inner.set_delivery(Rc::new(move |sim, from, bytes| {
            if lossy.get() {
                if let Some(seq) = SignedMessage::peek_wire_seq(&bytes) {
                    if seq % lanes == 0 {
                        return; // lane-0 agreement frame lost
                    }
                }
            }
            f(sim, from, bytes);
        }));
    }
}

#[test]
fn lane_loss_stalls_one_pipeline_while_others_commit() {
    const PIPELINES: usize = 4;
    const REQUESTS: u64 = 12;
    let cfg = ReptorConfig {
        pillars: PIPELINES,
        batch_size: 1,
        window: 64,
        ..ReptorConfig::small()
    };
    let (mut sim, net, hosts) = TestBed::cluster(0x10_55, cfg.n + 1);
    let nodes: Vec<(u32, simnet::HostId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h))
        .collect();
    let transports = SimTransport::build_group(&net, &nodes);
    let lossy = Rc::new(Cell::new(true));

    // Replica 3 (a backup) sees lane-0 loss; everyone else is healthy.
    let replicas: Vec<Replica> = (0..cfg.n)
        .map(|i| {
            let transport: Rc<dyn Transport> = if i == 3 {
                Rc::new(LossyLaneZero {
                    inner: transports[i].clone(),
                    lanes: PIPELINES,
                    lossy: lossy.clone(),
                })
            } else {
                Rc::new(transports[i].clone())
            };
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transport,
                &net,
                hosts[i],
                Box::new(CounterService::default()),
            )
        })
        .collect();
    let client = Client::new(
        cfg.n as u32,
        cfg.clone(),
        DOMAIN_SECRET,
        Rc::new(transports[cfg.n].clone()) as Rc<dyn Transport>,
    );

    for _ in 0..REQUESTS {
        client.submit(&mut sim, b"inc".to_vec());
    }
    // The healthy 2f + 1 replicas complete every request without the
    // victim's lane-0 votes.
    let mut steps = 0u64;
    while client.stats().completed < REQUESTS {
        assert!(sim.step(), "cluster must make progress");
        steps += 1;
        assert!(steps < 5_000_000, "cluster stalled under lane-0 loss");
    }

    // Seqs 1..=12 split as lane `s % 4`: lane 0 owns 4, 8, 12. The victim's
    // lane 0 never commits, but its other pipelines keep making progress,
    // and the executor blocks exactly at the first lane-0 gap (seq 4).
    let victim = &replicas[3];
    let stats = victim.pipeline_stats();
    assert_eq!(stats[0].committed, 0, "lane 0 must be starved at victim");
    let others: u64 = stats[1..].iter().map(|p| p.committed).sum();
    assert!(others > 0, "healthy pipelines must keep committing");
    assert!(victim.last_executed() < 4, "executor blocked at lane-0 gap");
    assert_eq!(replicas[0].last_executed(), REQUESTS);

    // Heal the lane and let the catch-up protocol repair the gap.
    lossy.set(false);
    sim.run_until_idle();
    assert_eq!(
        victim.last_executed(),
        REQUESTS,
        "victim must catch up after the lane heals"
    );
    assert!(victim.stats().catch_ups_applied > 0, "repair used catch-up");
    let logs: Vec<_> = replicas.iter().map(Replica::executed_log).collect();
    assert!(logs.windows(2).all(|w| w[0] == w[1]), "identical histories");
}
