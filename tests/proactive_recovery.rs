//! Liveness and safety of epoch-based proactive recovery: a full
//! rotation refreshes every replica through restart + state transfer
//! while the group keeps serving clients.
//!
//! The scheduler's stagger bound (at most one replica mid-refresh) is
//! what keeps the agreement quorum `2f + 1 = 3` of `n = 4` intact, so
//! the tests here drive a closed-loop client *through* the rotation and
//! assert that progress never stops — at COP pillar counts 1 and 4 —
//! then replay a whole rotation from a fixed seed and compare metrics
//! snapshots byte for byte.

use reptor::{Cluster, CounterService, RecoveryConfig, RecoveryScheduler, ReptorConfig};
use simnet::Nanos;

fn rotation_cfg(pillars: usize) -> ReptorConfig {
    ReptorConfig {
        checkpoint_interval: 4,
        pillars,
        ..ReptorConfig::small()
    }
}

fn recovery_cfg() -> RecoveryConfig {
    RecoveryConfig {
        period: Nanos::from_millis(30),
        poll: Nanos::from_millis(2),
        refresh_deadline: Nanos::from_millis(400),
    }
}

fn scheduler(c: &Cluster) -> RecoveryScheduler {
    RecoveryScheduler::new(
        c.replicas.clone(),
        recovery_cfg(),
        c.metrics(),
        Box::new(|| Box::new(CounterService::default())),
    )
}

/// Runs a full rotation under closed-loop client load and returns the
/// simulated timestamps of every request completed while it ran.
fn drive_rotation_under_load(c: &mut Cluster, sched: &RecoveryScheduler) -> Vec<Nanos> {
    let client = c.clients[0].clone();
    let mut done = client.stats().completed;
    let mut stamps = Vec::new();
    let mut guard = 0u32;
    while sched.stats().rotations_completed < 1 {
        client.submit(&mut c.sim, b"inc".to_vec());
        assert!(
            c.run_until_completed(done + 1, 2_000_000),
            "request stalled mid-rotation after {done} completions"
        );
        done += 1;
        stamps.push(c.sim.now());
        guard += 1;
        assert!(guard < 10_000, "rotation never completed");
    }
    stamps
}

/// Client throughput never drops to zero during a full epoch rotation:
/// every closed-loop request completes, and no gap between consecutive
/// completions exceeds a bound comfortably under the refresh deadline —
/// even while the primary itself is mid-refresh (the backups view-change
/// around it on the 40 ms protocol timeout).
fn throughput_survives_rotation(pillars: usize) {
    let mut c = Cluster::sim_transport(rotation_cfg(pillars), 1, 7, || {
        Box::new(CounterService::default())
    });

    // Warm-up: get past the first checkpoint so refreshed replicas have
    // a certified store to rebuild from.
    let client = c.clients[0].clone();
    for _ in 0..6 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(6, 2_000_000));
    c.settle();

    let sched = scheduler(&c);
    sched.start(&mut c.sim, 1);
    let stamps = drive_rotation_under_load(&mut c, &sched);

    assert!(
        stamps.len() >= 4,
        "a rotation spanning four refreshes must overlap several requests"
    );
    let mut prev = stamps[0];
    for &t in &stamps[1..] {
        assert!(
            t - prev < Nanos::from_millis(500),
            "throughput dropped to zero for {} between completions",
            t - prev
        );
        prev = t;
    }

    let stats = sched.stats();
    assert_eq!(stats.rotations_completed, 1);
    assert_eq!(
        stats.refreshes_completed, 4,
        "every replica must refresh and rejoin ({stats:?})"
    );
    assert_eq!(stats.refresh_timeouts, 0, "{stats:?}");
    for r in &c.replicas {
        assert_eq!(r.recovery_epoch(), 1, "replica {}", r.id());
        assert!(
            r.stats().state_transfers_completed >= 1,
            "replica {} must have rebuilt via state transfer",
            r.id()
        );
    }

    // Zero committed-sequence divergence across the whole run.
    c.settle();
    c.assert_safety();
    let digests: Vec<_> = c
        .replicas
        .iter()
        .map(|r| r.with_service(|s| s.state_digest()))
        .collect();
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "refreshed replicas must converge");
    }
}

#[test]
fn throughput_never_zero_during_rotation_single_pillar() {
    throughput_survives_rotation(1);
}

#[test]
fn throughput_never_zero_during_rotation_four_pillars() {
    throughput_survives_rotation(4);
}

/// The stagger bound, sampled at every simulator step: at no instant is
/// more than one replica mid-refresh — both by the scheduler's own
/// accounting and by the observable replica state (wiped log, i.e.
/// restarted and not yet rejoined).
#[test]
fn at_most_one_replica_mid_refresh_at_any_instant() {
    let mut c = Cluster::sim_transport(rotation_cfg(1), 1, 11, || {
        Box::new(CounterService::default())
    });
    let client = c.clients[0].clone();
    for _ in 0..6 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(6, 2_000_000));
    c.settle();

    let sched = scheduler(&c);
    sched.start(&mut c.sim, 1);
    let mut guard = 0u64;
    while sched.stats().rotations_completed < 1 {
        assert!(c.sim.step(), "sim went idle mid-rotation");
        assert!(
            sched.refreshing().map_or(0, |_| 1) <= 1,
            "scheduler tracks more than one refresh"
        );
        let wiped = c.replicas.iter().filter(|r| r.last_executed() == 0).count();
        assert!(
            wiped <= 1,
            "{wiped} replicas mid-refresh at {}",
            c.sim.now()
        );
        guard += 1;
        assert!(guard < 10_000_000, "rotation never completed");
    }
    let stats = sched.stats();
    assert_eq!(stats.refreshes_completed, 4, "{stats:?}");
    assert_eq!(stats.refresh_timeouts, 0, "{stats:?}");
}

/// A whole rotation under load — epoch roll, MR re-registration, four
/// restarts, four state transfers, the client traffic woven between
/// them — replays byte-identically from a fixed seed.
#[test]
fn fixed_seed_rotation_replays_byte_identically() {
    fn run(seed: u64) -> String {
        let mut c = Cluster::sim_transport(rotation_cfg(1), 1, seed, || {
            Box::new(CounterService::default())
        });
        let client = c.clients[0].clone();
        for _ in 0..6 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        assert!(c.run_until_completed(6, 2_000_000));
        c.settle();
        let sched = scheduler(&c);
        sched.start(&mut c.sim, 1);
        drive_rotation_under_load(&mut c, &sched);
        c.settle();
        c.metrics_snapshot().to_json()
    }
    let a = run(23);
    let b = run(23);
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");
}
