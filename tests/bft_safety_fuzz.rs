//! Randomized fault-schedule fuzzing of PBFT safety.
//!
//! Each case builds a 4-replica cluster, assigns a random Byzantine
//! behaviour to at most `f = 1` replica, injects random network loss and a
//! possible transient partition, submits a random request load, and then
//! asserts the core safety property: **no two replicas ever execute
//! different batches at the same sequence number**. Liveness is only
//! asserted when the schedule is benign enough to guarantee it.

use kvstore::{kv_config, KvHarness, Stack, YcsbSpec};
use proptest::prelude::*;
use reptor::{ByzantineMode, Cluster, CounterService, ReptorConfig};
use simnet::HostId;

#[derive(Debug, Clone)]
struct FaultSchedule {
    byzantine_replica: Option<(usize, u8)>,
    loss_pairs: Vec<(u8, u8, u8)>,
    partition_replica: Option<usize>,
    requests: u8,
    seed: u64,
}

fn arb_schedule() -> impl Strategy<Value = FaultSchedule> {
    (
        proptest::option::of((0usize..4, 0u8..4)),
        proptest::collection::vec((0u8..4, 0u8..4, 1u8..30), 0..3),
        proptest::option::of(1usize..4),
        1u8..8,
        any::<u64>(),
    )
        .prop_map(
            |(byzantine_replica, loss_pairs, partition_replica, requests, seed)| FaultSchedule {
                byzantine_replica,
                loss_pairs,
                partition_replica,
                requests,
                seed,
            },
        )
}

fn mode_from(tag: u8) -> ByzantineMode {
    match tag {
        0 => ByzantineMode::Crash,
        1 => ByzantineMode::SilentPrimary,
        2 => ByzantineMode::EquivocatingPrimary,
        _ => ByzantineMode::CorruptMacs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        // Each case runs a full cluster; keep debug builds brisk.
        cases: if cfg!(debug_assertions) { 8 } else { 24 },
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn pbft_safety_holds_under_random_faults(schedule in arb_schedule()) {
        let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, schedule.seed, || {
            Box::new(CounterService::default())
        });

        // At most one Byzantine replica (f = 1).
        if let Some((idx, tag)) = schedule.byzantine_replica {
            c.replicas[idx].set_byzantine(mode_from(tag));
        }
        // Random directional loss between replica hosts.
        for &(a, b, pct) in &schedule.loss_pairs {
            if a != b {
                c.net.with_faults(|f| {
                    f.set_loss(HostId(a as u32), HostId(b as u32), pct as f64 / 100.0)
                });
            }
        }
        // Possibly fully partition one backup (never the client's host).
        if let Some(idx) = schedule.partition_replica {
            let isolated = HostId(idx as u32);
            c.net.with_faults(|f| {
                for h in 0..5u32 {
                    if HostId(h) != isolated {
                        f.partition(HostId(h), isolated);
                    }
                }
            });
        }

        let client = c.clients[0].clone();
        for _ in 0..schedule.requests {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        // Run a bounded amount of work; the schedule may prevent liveness,
        // so no completion requirement here — only safety.
        let _ = c.run_until_completed(schedule.requests as u64, 1_500_000);
        c.assert_safety();

        // Executed counters never disagree with the executed log length.
        for r in &c.replicas {
            prop_assert_eq!(
                r.executed_log().len() as u64,
                r.stats().executed_batches,
                "replica {} log/stat mismatch", r.id()
            );
        }

        // Benign schedules must also be live.
        let benign = schedule.byzantine_replica.is_none()
            && schedule.partition_replica.is_none()
            && schedule.loss_pairs.iter().all(|&(_, _, p)| p == 0);
        if benign {
            prop_assert_eq!(
                client.stats().completed,
                schedule.requests as u64,
                "benign schedule must complete all requests"
            );
        }
    }
}

/// A Byzantine replica that advertises a *revoked* read-lease rkey — its
/// grants carry a once-valid rkey it has already deregistered, while it
/// keeps a fresh region for itself. No message-level check can catch
/// this: the grant is well-formed and MAC-authenticated. The defense is
/// the RNIC permission check itself (the paper's thesis): every READ on
/// the dead rkey is denied at the responder (`stale_rkey_denied`), the
/// client falls back to agreement for that read, rotates the liar out of
/// its quorum, and resumes one-sided reads against the honest `2f + 1`.
/// Swept over seeds 1–5 in one go (the scenario must not be
/// seed-sensitive, and CI's CHAOS_SEED matrix re-runs it redundantly).
#[test]
fn stale_lease_offer_is_rnic_denied_and_rotated_out() {
    for seed in 1u64..=5 {
        let mut h = KvHarness::build(Stack::Rubin, 0x51E + seed, 3, kv_config(), 64);
        h.replicas[1].set_byzantine(ByzantineMode::StaleLeaseOffer);
        assert!(
            h.run_ycsb(&YcsbSpec::b(16), seed, 25, 60_000_000),
            "run wedged (seed {seed})"
        );
        assert!(
            h.total("stale_rkey_denied") >= 1,
            "the stale rkey was never denied at the RNIC (seed {seed})"
        );
        assert!(
            h.total("kv_read_fallback") >= 1,
            "denied reads must fall back to agreement (seed {seed})"
        );
        assert!(
            h.total("kv_read_onesided") >= 1,
            "clients must resume one-sided reads on the honest quorum (seed {seed})"
        );
        h.check_history()
            .unwrap_or_else(|e| panic!("history must linearize (seed {seed}): {e}"));
    }
}
