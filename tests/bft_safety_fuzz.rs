//! Randomized fault-schedule fuzzing of PBFT safety.
//!
//! Each case builds a 4-replica cluster, assigns a random Byzantine
//! behaviour to at most `f = 1` replica, injects random network loss and a
//! possible transient partition, submits a random request load, and then
//! asserts the core safety property: **no two replicas ever execute
//! different batches at the same sequence number**. Liveness is only
//! asserted when the schedule is benign enough to guarantee it.

use kvstore::{kv_config, KvHarness, Stack, YcsbSpec};
use proptest::prelude::*;
use reptor::{ByzantineMode, Cluster, CounterService, ReptorConfig};
use simnet::{HostId, Nanos};

#[derive(Debug, Clone)]
struct FaultSchedule {
    byzantine_replica: Option<(usize, u8)>,
    loss_pairs: Vec<(u8, u8, u8)>,
    partition_replica: Option<usize>,
    requests: u8,
    seed: u64,
}

fn arb_schedule() -> impl Strategy<Value = FaultSchedule> {
    (
        proptest::option::of((0usize..4, 0u8..4)),
        proptest::collection::vec((0u8..4, 0u8..4, 1u8..30), 0..3),
        proptest::option::of(1usize..4),
        1u8..8,
        any::<u64>(),
    )
        .prop_map(
            |(byzantine_replica, loss_pairs, partition_replica, requests, seed)| FaultSchedule {
                byzantine_replica,
                loss_pairs,
                partition_replica,
                requests,
                seed,
            },
        )
}

fn mode_from(tag: u8) -> ByzantineMode {
    match tag {
        0 => ByzantineMode::Crash,
        1 => ByzantineMode::SilentPrimary,
        2 => ByzantineMode::EquivocatingPrimary,
        _ => ByzantineMode::CorruptMacs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        // Each case runs a full cluster; keep debug builds brisk.
        cases: if cfg!(debug_assertions) { 8 } else { 24 },
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn pbft_safety_holds_under_random_faults(schedule in arb_schedule()) {
        let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, schedule.seed, || {
            Box::new(CounterService::default())
        });

        // At most one Byzantine replica (f = 1).
        if let Some((idx, tag)) = schedule.byzantine_replica {
            c.replicas[idx].set_byzantine(mode_from(tag));
        }
        // Random directional loss between replica hosts.
        for &(a, b, pct) in &schedule.loss_pairs {
            if a != b {
                c.net.with_faults(|f| {
                    f.set_loss(HostId(a as u32), HostId(b as u32), pct as f64 / 100.0)
                });
            }
        }
        // Possibly fully partition one backup (never the client's host).
        if let Some(idx) = schedule.partition_replica {
            let isolated = HostId(idx as u32);
            c.net.with_faults(|f| {
                for h in 0..5u32 {
                    if HostId(h) != isolated {
                        f.partition(HostId(h), isolated);
                    }
                }
            });
        }

        let client = c.clients[0].clone();
        for _ in 0..schedule.requests {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        // Run a bounded amount of work; the schedule may prevent liveness,
        // so no completion requirement here — only safety.
        let _ = c.run_until_completed(schedule.requests as u64, 1_500_000);
        c.assert_safety();

        // Executed counters never disagree with the executed log length.
        for r in &c.replicas {
            prop_assert_eq!(
                r.executed_log().len() as u64,
                r.stats().executed_batches,
                "replica {} log/stat mismatch", r.id()
            );
        }

        // Benign schedules must also be live.
        let benign = schedule.byzantine_replica.is_none()
            && schedule.partition_replica.is_none()
            && schedule.loss_pairs.iter().all(|&(_, _, p)| p == 0);
        if benign {
            prop_assert_eq!(
                client.stats().completed,
                schedule.requests as u64,
                "benign schedule must complete all requests"
            );
        }
    }
}

/// A Byzantine replica that advertises a *revoked* read-lease rkey — its
/// grants carry a once-valid rkey it has already deregistered, while it
/// keeps a fresh region for itself. No message-level check can catch
/// this: the grant is well-formed and MAC-authenticated. The defense is
/// the RNIC permission check itself (the paper's thesis): every READ on
/// the dead rkey is denied at the responder (`stale_rkey_denied`), the
/// client falls back to agreement for that read, rotates the liar out of
/// its quorum, and resumes one-sided reads against the honest `2f + 1`.
/// Swept over seeds 1–5 in one go (the scenario must not be
/// seed-sensitive, and CI's CHAOS_SEED matrix re-runs it redundantly).
#[test]
fn stale_lease_offer_is_rnic_denied_and_rotated_out() {
    for seed in 1u64..=5 {
        let mut h = KvHarness::build(Stack::Rubin, 0x51E + seed, 3, kv_config(), 64);
        h.replicas[1].set_byzantine(ByzantineMode::StaleLeaseOffer);
        assert!(
            h.run_ycsb(&YcsbSpec::b(16), seed, 25, 60_000_000),
            "run wedged (seed {seed})"
        );
        assert!(
            h.total("stale_rkey_denied") >= 1,
            "the stale rkey was never denied at the RNIC (seed {seed})"
        );
        assert!(
            h.total("kv_read_fallback") >= 1,
            "denied reads must fall back to agreement (seed {seed})"
        );
        assert!(
            h.total("kv_read_onesided") >= 1,
            "clients must resume one-sided reads on the honest quorum (seed {seed})"
        );
        h.check_history()
            .unwrap_or_else(|e| panic!("history must linearize (seed {seed}): {e}"));
    }
}

/// A Byzantine replica that *forges cell contents* inside its own validly
/// leased region: every published cell carries an inflated (even,
/// perfectly committed-looking) stamp and scribbled value bytes. The RNIC
/// fence is useless here — the rkey is live and every READ succeeds — so
/// this is exactly the attack a max-stamp quorum read would swallow
/// wholesale. The unanimity rule refuses it: a fabricated (stamp, value)
/// can never match the `f + 1`-plus honest cells in the quorum, so every
/// read that meets a forged cell diverges (`kv_read_divergent`), falls
/// back to agreement, and demerits the out-voted forger, after which
/// one-sided reads resume on the honest `2f + 1`. The recorded history
/// must linearize throughout — the fabricated values never surface.
#[test]
fn forged_lease_cells_are_outvoted_and_never_served() {
    for seed in 1u64..=5 {
        let mut h = KvHarness::build(Stack::Rubin, 0xF0C + seed, 3, kv_config(), 64);
        h.replicas[1].set_byzantine(ByzantineMode::ForgedLeaseCells);
        assert!(
            h.run_ycsb(&YcsbSpec::a(16), seed, 25, 60_000_000),
            "run wedged (seed {seed})"
        );
        assert!(
            h.total("lease_cells_forged") >= 1,
            "the forger never published a forged cell (seed {seed})"
        );
        assert!(
            h.total("kv_read_divergent") >= 1,
            "no read ever met the forged cells (seed {seed})"
        );
        assert!(
            h.total("kv_read_onesided") >= 1,
            "clients must resume one-sided reads on the honest quorum (seed {seed})"
        );
        h.check_history()
            .unwrap_or_else(|e| panic!("forged cells leaked into the history (seed {seed}): {e}"));
    }
}

/// Apply lag plus quorum divergence — the new-then-old inversion hazard.
/// Replica 2 receives all replica-to-replica traffic 400 µs late, so it
/// executes (and publishes cells) long after a write's reply quorum
/// forms, while clients can still READ its leased region promptly. A
/// quorum containing the laggard straddles the write: fresh cells from
/// the prompt replicas, a stale (validly committed, older-stamped) cell
/// from the laggard. Accepting the max stamp here and the older stamp on
/// a later, laggard-free quorum would invert read order; the unanimity
/// rule instead refuses every mixed quorum (`kv_read_divergent`),
/// demerits the laggard out of subsequent quorums (quorums *diverge*
/// between consecutive reads — the scenario the checker must cover), and
/// the history stays linearizable.
#[test]
fn apply_lag_quorum_divergence_never_inverts_reads() {
    for seed in 1u64..=5 {
        let mut h = KvHarness::build(Stack::Rubin, 0xAB1 + seed, 3, kv_config(), 64);
        h.net.with_faults(|f| {
            for src in [0u32, 1, 3] {
                f.set_extra_delay(HostId(src), HostId(2), Nanos::from_micros(400));
            }
        });
        assert!(
            h.run_ycsb(&YcsbSpec::a(16), seed, 25, 120_000_000),
            "run wedged (seed {seed})"
        );
        assert!(
            h.total("kv_read_divergent") >= 1,
            "apply lag never produced a divergent quorum (seed {seed})"
        );
        assert!(
            h.total("kv_read_onesided") >= 1,
            "one-sided reads must still engage (seed {seed})"
        );
        h.check_history().unwrap_or_else(|e| {
            panic!("divergent quorums inverted the read order (seed {seed}): {e}")
        });
    }
}
