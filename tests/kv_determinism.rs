//! Same-seed replay determinism for full KV runs.
//!
//! The one-sided read path adds asynchronous machinery on both sides of
//! the wire — lease grants, parallel quorum READs, two-phase region
//! writes with scheduled commit closures, denial-driven re-queries — and
//! none of it may cost the simulator its reproducibility guarantee. A
//! fixed-seed YCSB run must replay byte-identically down to the full
//! metrics snapshot JSON (every counter, gauge, and trace), for both
//! canonical workload mixes, across COP pipeline counts, on both comm
//! stacks.

use kvstore::{KvHarness, Stack, YcsbSpec};
use reptor::ReptorConfig;

/// One full YCSB run, reduced to its complete metrics snapshot JSON plus
/// the rendered operation history.
fn run_fingerprint(stack: Stack, spec: &YcsbSpec, pipelines: usize, seed: u64) -> String {
    let cfg = ReptorConfig {
        pillars: pipelines,
        batch_size: 1,
        window: 64,
        read_leases: true,
        ..ReptorConfig::small()
    };
    let mut h = KvHarness::build(stack, seed, 3, cfg, 64);
    assert!(
        h.run_ycsb(spec, seed, 12, 40_000_000),
        "run wedged ({} p={pipelines} seed {seed})",
        stack.label()
    );
    h.check_history().expect("replayed run must linearize");
    format!("{:?}\n{}", h.history(), h.metrics_snapshot().to_json())
}

fn assert_replays_identically(stack: Stack, spec: YcsbSpec, pipelines: usize, seed: u64) {
    let first = run_fingerprint(stack, &spec, pipelines, seed);
    let second = run_fingerprint(stack, &spec, pipelines, seed);
    assert!(!first.is_empty());
    assert_eq!(
        first,
        second,
        "{} p={pipelines} {} replay diverged",
        stack.label(),
        spec.label()
    );
}

#[test]
fn ycsb_a_replays_byte_identically_over_rubin() {
    assert_replays_identically(Stack::Rubin, YcsbSpec::a(12), 1, 0x2A);
}

#[test]
fn ycsb_b_replays_byte_identically_over_rubin() {
    assert_replays_identically(Stack::Rubin, YcsbSpec::b(12), 1, 0x2B);
}

#[test]
fn ycsb_a_replays_byte_identically_over_nio() {
    assert_replays_identically(Stack::Nio, YcsbSpec::a(12), 1, 0x3A);
}

#[test]
fn ycsb_b_replays_byte_identically_over_nio() {
    assert_replays_identically(Stack::Nio, YcsbSpec::b(12), 1, 0x3B);
}

#[test]
fn cop_p4_ycsb_a_replays_byte_identically_over_rubin() {
    assert_replays_identically(Stack::Rubin, YcsbSpec::a(12), 4, 0x4A);
}

#[test]
fn cop_p4_ycsb_b_replays_byte_identically_over_nio() {
    assert_replays_identically(Stack::Nio, YcsbSpec::b(12), 4, 0x4B);
}

/// Different seeds must actually produce different runs (the fingerprint
/// is not vacuously constant).
#[test]
fn different_seeds_diverge() {
    let a = run_fingerprint(Stack::Rubin, &YcsbSpec::b(12), 1, 5);
    let b = run_fingerprint(Stack::Rubin, &YcsbSpec::b(12), 1, 6);
    assert_ne!(a, b, "fingerprint must be sensitive to the seed");
}
