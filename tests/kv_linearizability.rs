//! The linearizability battery gating the agreement-free read path.
//!
//! Every scenario runs the replicated KV service under a YCSB-style
//! workload in the deterministic simulation, records each client's full
//! operation history (one-sided reads and message-path operations alike,
//! with exact invoke/response instants), and feeds it to the exhaustive
//! Wing–Gong checker. The point of the battery: one-sided reads bypass
//! agreement entirely, so *only* a linearizability oracle can certify
//! that the lease/version-stamp machinery never serves a stale or torn
//! value — there is no protocol-level acknowledgement to assert on.
//!
//! Seeded from `CHAOS_SEED` (CI sweeps 1–5). The revocation scenarios
//! assert the RNIC actually denied a revoked rkey (`stale_rkey_denied`)
//! and that the client's fallback engaged (`kv_read_fallback`), so the
//! safety path is exercised, not just available.

use kvstore::{kv_config, KvHarness, KvStoreService, Stack, YcsbSpec};
use reptor::{ByzantineMode, Cluster, KvOp, ReptorConfig};
use simnet::LatencyMatrix;

/// Seed for the scenario timeline; CI sweeps this via the environment.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Benign case on the RDMA stack: leases arm, one-sided reads engage and
/// dominate a read-heavy mix, and the recorded history linearizes.
#[test]
fn rubin_ycsb_b_is_linearizable_with_onesided_reads() {
    let seed = chaos_seed();
    let mut h = KvHarness::build(Stack::Rubin, 0xB0 + seed, 4, kv_config(), 128);
    assert!(
        h.run_ycsb(&YcsbSpec::b(24), seed, 40, 40_000_000),
        "run wedged (seed {seed})"
    );
    h.check_history().expect("one-sided reads must linearize");
    assert!(
        h.total("kv_read_onesided") >= 1,
        "the one-sided path never engaged (seed {seed})"
    );
}

/// Write-heavy workload A: frequent region updates maximise the torn
/// window and lease-roll churn the reads race against.
#[test]
fn rubin_ycsb_a_write_heavy_is_linearizable() {
    let seed = chaos_seed();
    let mut h = KvHarness::build(Stack::Rubin, 0xA0 + seed, 3, kv_config(), 64);
    assert!(
        h.run_ycsb(&YcsbSpec::a(12), seed, 30, 40_000_000),
        "run wedged (seed {seed})"
    );
    h.check_history()
        .expect("write-heavy history must linearize");
}

/// Lease revocation racing live reads: a backup restarts cold mid-run,
/// which revokes its read-lease MR (the satellite regression: revocation
/// must precede WAL replay). Clients still holding the dead rkey get
/// denied *by the RNIC* and must rotate + fall back — asserted via the
/// `stale_rkey_denied` and `kv_read_fallback` counters — and the history
/// spanning the whole outage must still linearize.
#[test]
fn lease_revocation_mid_run_denies_stale_rkeys_and_stays_linearizable() {
    let seed = chaos_seed();
    let mut h = KvHarness::build(Stack::Rubin, 0xC0 + seed, 4, kv_config(), 128);

    // Phase 1: healthy traffic, leases cached by every client.
    assert!(
        h.run_ycsb(&YcsbSpec::b(16), seed, 15, 40_000_000),
        "phase 1 wedged (seed {seed})"
    );
    assert!(h.total("kv_read_onesided") >= 1, "leases never engaged");
    assert_eq!(h.total("lease_revocations"), 0);

    // A backup restarts cold. Its lease MR is released before the WAL
    // replays (counter bumps immediately), so the stale rkey clients
    // still cache is dead at the RNIC from this instant on.
    let victim = h.replicas[1].clone();
    victim.restart(&mut h.sim, Box::new(KvStoreService::new(128)));
    assert!(
        h.total("lease_revocations") >= 1,
        "restart must revoke the read lease before recovery"
    );

    // Phase 2: clients read with the dead rkey in their lease cache.
    assert!(
        h.run_ycsb(&YcsbSpec::b(16), seed ^ 0x5A5A, 15, 80_000_000),
        "phase 2 wedged (seed {seed})"
    );
    assert!(
        h.total("stale_rkey_denied") >= 1,
        "no RNIC denial recorded: the revoked rkey was never exercised (seed {seed})"
    );
    assert!(
        h.total("kv_read_fallback") >= 1,
        "denied reads must fall back to the message path (seed {seed})"
    );
    h.check_history()
        .expect("history across the revocation must linearize");
}

/// A view change mid-run: the primary goes silent, the group elects a new
/// view, and `enter_view` rolls every live replica's lease to a fresh
/// rkey. Reads spanning the change must linearize.
#[test]
fn view_change_rolls_leases_and_stays_linearizable() {
    let seed = chaos_seed();
    let mut h = KvHarness::build(Stack::Rubin, 0xD0 + seed, 3, kv_config(), 64);
    assert!(
        h.run_ycsb(&YcsbSpec::b(12), seed, 10, 40_000_000),
        "phase 1 wedged (seed {seed})"
    );

    // Crash the view-0 primary; client retransmissions drive the backups
    // through the view-change protocol. The second phase is write-heavy
    // (workload A): one-sided reads would keep completing against the
    // dead primary's still-mapped region, but any write stalls until the
    // election, so the phase cannot finish in view 0.
    h.replicas[0].set_byzantine(ByzantineMode::Crash);
    assert!(
        h.run_ycsb(&YcsbSpec::a(12), seed ^ 0x77, 10, 120_000_000),
        "view change never completed (seed {seed})"
    );
    assert!(
        h.replicas[1].view() >= 1,
        "backups must have left view 0 (seed {seed})"
    );
    assert!(
        h.total("lease_revocations") >= 1,
        "entering a view must roll the read lease"
    );
    h.check_history()
        .expect("history across the view change must linearize");
}

/// The socket stack has no one-sided primitive: every read must fall back
/// to agreement, no lease counter may fire on the read path, and the
/// history (trivially, but measurably) linearizes.
#[test]
fn nio_stack_serves_all_reads_through_agreement() {
    let seed = chaos_seed();
    let mut h = KvHarness::build(Stack::Nio, 0xE0 + seed, 3, kv_config(), 64);
    assert!(
        h.run_ycsb(&YcsbSpec::b(12), seed, 20, 40_000_000),
        "run wedged (seed {seed})"
    );
    h.check_history()
        .expect("message-path history must linearize");
    assert_eq!(h.total("kv_read_onesided"), 0);
    assert!(h.total("kv_read_fallback") >= 1);
}

/// The workload generator at geo scale: a WAN-spread group with many
/// clients multiplexed over few hosts, driven through the agreement path.
/// (One-sided reads need the RDMA transport; this scenario sizes the
/// *driver*, and the safety cross-check plus digest agreement gate it.)
fn geo_kv(clients: usize, client_hosts: usize, per_client: u64, seed: u64) {
    let topo = LatencyMatrix::three_region_wan();
    let cfg = ReptorConfig {
        read_leases: true,
        ..ReptorConfig::small()
    };
    let mut c = Cluster::sim_transport_geo(cfg, clients, client_hosts, seed, &topo, || {
        Box::new(KvStoreService::new(256))
    });
    let cl = c.clients.clone();
    for (i, client) in cl.iter().enumerate() {
        for j in 0..per_client {
            let key = format!("user{:06}", (i as u64 * 7 + j) % 64).into_bytes();
            let op = if j % 2 == 0 {
                KvOp::Put(key, format!("g{i}-{j}").into_bytes())
            } else {
                KvOp::Get(key)
            };
            client.submit(&mut c.sim, op.encode());
        }
    }
    assert!(
        c.run_until_completed(per_client, 300_000_000),
        "geo KV workload must complete"
    );
    c.assert_safety();
}

#[test]
fn geo_kv_workload_commits_across_regions() {
    geo_kv(48, 3, 3, 0xF0 + chaos_seed());
}

/// The scale tier: a thousand simulated KV clients across eight WAN
/// hosts. Run by the CI `scale` job in release mode.
#[test]
#[ignore]
fn geo_kv_thousand_clients() {
    geo_kv(1000, 8, 2, 0x1F0 + chaos_seed());
}
