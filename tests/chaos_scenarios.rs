//! End-to-end failure-recovery scenarios: PBFT agreement driven over the
//! full comm stacks while the fault plane injects loss, duplication,
//! reordering, corruption, and host crashes.
//!
//! Each scenario is seeded from the `CHAOS_SEED` environment variable
//! (default 1) so CI can sweep a seed matrix; with a fixed seed every
//! timeline — fault coins included — replays byte-identically, which the
//! determinism test asserts over the whole metrics snapshot.
//!
//! The layered recovery story under test:
//! * lost RDMA packets are retransmitted by the RC queue pair, lost TCP
//!   segments by the kernel stack's go-back-N — agreement never notices
//!   a few percent of loss;
//! * duplicated or reordered frames are suppressed below the protocol
//!   (QP sequence dedup, TCP sequence dedup) and above it (replica
//!   client-request dedup), so nothing executes twice;
//! * corrupted frames fail MAC verification and are dropped;
//! * a crashed primary breaks queue pairs / streams, the live replicas
//!   view-change to a new primary, and the transport layer re-dials the
//!   restarted host with exponential backoff.

use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{
    ByzantineMode, Client, CounterService, NioTransport, Replica, ReptorConfig, RubinTransport,
    Transport, DOMAIN_SECRET,
};
use rubin::RubinConfig;
use simnet::{ChaosAction, ChaosSchedule, CoreId, HostId, Nanos, Network, Simulator, TestBed};
use simnet_socket::TcpModel;

/// Seed for the chaos timeline; CI sweeps this via the environment.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[derive(Clone, Copy)]
enum StackKind {
    Nio,
    Rubin,
}

/// The concrete transport endpoints, kept so scenarios can assert on
/// reconnect counters after the protocol layer is done with them.
enum Stacks {
    Nio(Vec<NioTransport>),
    Rubin(Vec<RubinTransport>),
}

impl Stacks {
    fn reconnect_attempts(&self) -> u64 {
        match self {
            Stacks::Nio(ts) => ts.iter().map(NioTransport::reconnect_attempts).sum(),
            Stacks::Rubin(ts) => ts.iter().map(RubinTransport::reconnect_attempts).sum(),
        }
    }

    fn reconnects_completed(&self) -> u64 {
        match self {
            Stacks::Nio(ts) => ts.iter().map(NioTransport::reconnects_completed).sum(),
            Stacks::Rubin(ts) => ts.iter().map(RubinTransport::reconnects_completed).sum(),
        }
    }
}

struct World {
    sim: Simulator,
    net: Network,
    hosts: Vec<HostId>,
    replicas: Vec<Replica>,
    client: Client,
    stacks: Stacks,
}

fn build(kind: StackKind, seed: u64) -> World {
    let cfg = ReptorConfig::small();
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(seed, n + 1);
    let nodes: Vec<(u32, HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let (stacks, transports): (Stacks, Vec<Rc<dyn Transport>>) = match kind {
        StackKind::Nio => {
            let ts = NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon());
            let dyns = ts
                .iter()
                .map(|t| Rc::new(t.clone()) as Rc<dyn Transport>)
                .collect();
            (Stacks::Nio(ts), dyns)
        }
        StackKind::Rubin => {
            let ts = RubinTransport::build_group(
                &mut sim,
                &net,
                &nodes,
                RnicModel::mt27520(),
                RubinConfig::paper(),
            );
            let dyns = ts
                .iter()
                .map(|t| Rc::new(t.clone()) as Rc<dyn Transport>)
                .collect();
            (Stacks::Rubin(ts), dyns)
        }
    };
    // Let the mesh establish before faults or traffic start.
    sim.run_until_idle();

    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                Box::new(CounterService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg, DOMAIN_SECRET, transports[n].clone());
    World {
        sim,
        net,
        hosts,
        replicas,
        client,
        stacks,
    }
}

fn run_to_completion(w: &mut World, want: u64) {
    let mut guard: u64 = 0;
    while w.client.stats().completed < want {
        assert!(w.sim.step(), "simulation went idle before completion");
        guard += 1;
        assert!(guard < 20_000_000, "agreement stalled");
    }
}

fn assert_total_order(replicas: &[Replica]) {
    let logs: Vec<_> = replicas.iter().map(Replica::executed_log).collect();
    for a in &logs {
        for b in &logs {
            for (sa, da) in a {
                for (sb, db) in b {
                    if sa == sb {
                        assert_eq!(da, db, "divergent execution at seq {sa}");
                    }
                }
            }
        }
    }
}

/// Installs directional loss `p` on every ordered host pair.
fn lossy_mesh(w: &World, p: f64) {
    w.net.with_faults(|f| {
        for &a in &w.hosts {
            for &b in &w.hosts {
                if a != b {
                    f.set_loss(a, b, p);
                }
            }
        }
    });
}

/// Agreement under packet loss: the per-stack reliability layer (RC
/// retransmission / TCP go-back-N) absorbs 1–5% drop rates without the
/// protocol noticing.
fn loss_scenario(kind: StackKind, seed: u64) {
    let mut w = build(kind, seed);
    // 1%..5% depending on the seed, so the CI matrix sweeps the range.
    let p = 0.01 * (1 + seed % 5) as f64;
    lossy_mesh(&w, p);
    let client = w.client.clone();
    for _ in 0..10 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 10);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 10, "replica {}", r.id());
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 10u64.to_le_bytes(), "exactly-once execution");
}

#[test]
fn pbft_reaches_agreement_under_loss_on_rubin_stack() {
    loss_scenario(StackKind::Rubin, chaos_seed());
}

#[test]
fn pbft_reaches_agreement_under_loss_on_nio_stack() {
    loss_scenario(StackKind::Nio, chaos_seed());
}

/// Duplicated and reordered frames must never double-execute a request:
/// the QP/TCP sequence layer suppresses wire-level duplicates and the
/// replica's client-request dedup absorbs client resends.
fn dup_reorder_scenario(kind: StackKind, seed: u64) {
    let mut w = build(kind, seed);
    w.net.with_faults(|f| {
        for &a in &w.hosts {
            for &b in &w.hosts {
                if a != b {
                    f.set_duplication(a, b, 0.3);
                    f.set_reorder_jitter(a, b, Nanos::from_micros(2));
                }
            }
        }
    });
    let client = w.client.clone();
    for _ in 0..10 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 10);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(
            r.stats().executed_requests,
            10,
            "duplicates must not re-execute on replica {}",
            r.id()
        );
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 10u64.to_le_bytes(), "counter incremented exactly 10x");
    if matches!(kind, StackKind::Rubin) {
        // The RDMA receive path saw and suppressed wire duplicates.
        let snap = w.net.metrics().snapshot();
        assert!(
            snap.total("duplicates_suppressed") > 0,
            "30% duplication must hit the QP dedup window"
        );
    }
}

#[test]
fn duplicated_and_reordered_frames_execute_exactly_once_on_rubin_stack() {
    dup_reorder_scenario(StackKind::Rubin, chaos_seed());
}

#[test]
fn duplicated_and_reordered_frames_execute_exactly_once_on_nio_stack() {
    dup_reorder_scenario(StackKind::Nio, chaos_seed());
}

/// Client-request idempotence under resend-like pressure: with every
/// client→replica frame duplicated, each replica receives every request
/// at least twice yet executes it once (replica-level dedup, above the
/// wire-level sequence dedup).
#[test]
fn duplicated_client_requests_are_deduplicated_by_replicas() {
    let mut w = build(StackKind::Rubin, chaos_seed());
    let client_host = *w.hosts.last().unwrap();
    w.net.with_faults(|f| {
        for &h in &w.hosts[..w.hosts.len() - 1] {
            f.set_duplication(client_host, h, 1.0);
            f.set_reorder_jitter(client_host, h, Nanos::from_micros(3));
        }
    });
    let client = w.client.clone();
    for _ in 0..5 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 5);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 5, "replica {}", r.id());
    }
    assert_eq!(client.stats().completed, 5);
    assert_eq!(client.completions().len(), 5);
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(
        last,
        5u64.to_le_bytes(),
        "each request applied exactly once"
    );
}

/// Corrupted frames must die at the MAC check, and agreement must ride
/// out the induced message loss (Rubin stack: corruption flips payload
/// bytes inside the RDMA data packets).
#[test]
fn corrupted_frames_are_rejected_by_mac_and_agreement_survives() {
    let mut w = build(StackKind::Rubin, chaos_seed());
    // Corrupt only replica↔replica links; the client's links stay clean so
    // requests and replies flow. MACs turn corruption into plain loss.
    let replica_hosts = &w.hosts[..w.hosts.len() - 1];
    w.net.with_faults(|f| {
        for &a in replica_hosts {
            for &b in replica_hosts {
                if a != b {
                    f.set_corruption(a, b, 0.05);
                }
            }
        }
    });
    let client = w.client.clone();
    for _ in 0..8 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 8);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    let bad_macs: u64 = w.replicas.iter().map(|r| r.stats().bad_mac_dropped).sum();
    assert!(
        bad_macs > 0,
        "5% corruption must surface as MAC rejections somewhere"
    );
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 8, "replica {}", r.id());
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 8u64.to_le_bytes());
}

/// The flagship recovery scenario: the primary's host loses power
/// mid-workload. Live replicas' queue pairs / streams to it break, they
/// view-change to a new primary and keep executing; the transport layer
/// re-dials the dead host with exponential backoff until it restarts,
/// after which the mesh is whole again — and nothing executed twice.
///
/// Returns the run's metrics snapshot JSON for the determinism test.
fn primary_crash_scenario(kind: StackKind, seed: u64) -> String {
    let mut w = build(kind, seed);
    let client = w.client.clone();

    // Phase 1: a healthy prefix under the original primary (replica 0).
    for _ in 0..3 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 3);
    w.sim.run_until_idle();
    assert_eq!(w.replicas[0].stats().executed_requests, 3);

    // Phase 2: the primary's host crashes (scripted, replayable).
    let t_crash = w.sim.now() + Nanos::from_micros(100);
    ChaosSchedule::new()
        .at(t_crash, ChaosAction::CrashHost { host: w.hosts[0] })
        .install(&mut w.sim, &w.net);
    let r0 = w.replicas[0].clone();
    w.sim.schedule_at(
        t_crash,
        Box::new(move |_sim| {
            r0.set_byzantine(ByzantineMode::Crash);
        }),
    );
    w.sim.run_until(t_crash + Nanos::from_micros(1));

    // Phase 3: requests submitted into the faulty window. Backups arm
    // view-change timers, depose the dead primary, and commit under the
    // new one while the transports keep re-dialing the dead host.
    for _ in 0..5 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 8);
    for r in &w.replicas[1..] {
        assert!(r.view() >= 1, "replica {} must have view-changed", r.id());
        assert_eq!(r.stats().executed_requests, 8, "replica {}", r.id());
    }
    assert!(
        w.stacks.reconnect_attempts() > 0,
        "peers must have re-dialed the crashed host"
    );

    // Phase 4: the host restarts; backoff re-dials now land and the mesh
    // heals. The peers' holding-pen queues carried the protocol traffic
    // addressed to the dead host across the outage, so on reconnect the
    // revived replica replays the backlog and may catch up part or all of
    // the way (dedicated state transfer is out of scope).
    let t_heal = w.sim.now() + Nanos::from_millis(1);
    ChaosSchedule::new()
        .at(t_heal, ChaosAction::RestartHost { host: w.hosts[0] })
        .install(&mut w.sim, &w.net);
    let r0 = w.replicas[0].clone();
    w.sim.schedule_at(
        t_heal,
        Box::new(move |_sim| {
            r0.set_byzantine(ByzantineMode::Honest);
        }),
    );
    // Backoff caps at 64 ms; give the slowest dialer two full windows.
    w.sim.run_until(t_heal + Nanos::from_millis(150));

    assert!(
        w.stacks.reconnects_completed() > 0,
        "re-dials must succeed once the host is back"
    );
    // Exactly-once execution end to end: the live replicas executed the
    // full workload exactly once each; the revived replica holds its
    // pre-crash prefix plus however much of the replayed backlog it could
    // commit — never more than the workload, never a duplicate.
    assert_total_order(&w.replicas);
    for r in &w.replicas[1..] {
        assert_eq!(r.stats().executed_requests, 8, "replica {}", r.id());
    }
    let revived = w.replicas[0].stats().executed_requests;
    assert!(
        (3..=8).contains(&revived),
        "revived replica executed {revived}, outside its possible range"
    );
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 8u64.to_le_bytes(), "no request executed twice");
    w.net.metrics().snapshot().to_json()
}

#[test]
fn primary_crash_view_change_and_reconnect_on_rubin_stack() {
    let json = primary_crash_scenario(StackKind::Rubin, chaos_seed());
    // The snapshot records the recovery machinery that ran.
    assert!(json.contains("reconnect_attempts"));
    assert!(json.contains("reconnects_completed"));
    assert!(json.contains("retransmits"));
}

#[test]
fn primary_crash_view_change_and_reconnect_on_nio_stack() {
    let json = primary_crash_scenario(StackKind::Nio, chaos_seed());
    assert!(json.contains("reconnect_attempts"));
    assert!(json.contains("reconnects_completed"));
    assert!(json.contains("retransmits"));
}

/// The whole failure timeline — fault coins, retransmissions, view
/// change, reconnect backoff — replays byte-identically from a seed.
#[test]
fn fixed_seed_crash_timeline_replays_byte_identically() {
    let a = primary_crash_scenario(StackKind::Rubin, chaos_seed());
    let b = primary_crash_scenario(StackKind::Rubin, chaos_seed());
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");
}
