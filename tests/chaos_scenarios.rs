//! End-to-end failure-recovery scenarios: PBFT agreement driven over the
//! full comm stacks while the fault plane injects loss, duplication,
//! reordering, corruption, and host crashes.
//!
//! Each scenario is seeded from the `CHAOS_SEED` environment variable
//! (default 1) so CI can sweep a seed matrix; with a fixed seed every
//! timeline — fault coins included — replays byte-identically, which the
//! determinism test asserts over the whole metrics snapshot.
//!
//! The layered recovery story under test:
//! * lost RDMA packets are retransmitted by the RC queue pair, lost TCP
//!   segments by the kernel stack's go-back-N — agreement never notices
//!   a few percent of loss;
//! * duplicated or reordered frames are suppressed below the protocol
//!   (QP sequence dedup, TCP sequence dedup) and above it (replica
//!   client-request dedup), so nothing executes twice;
//! * corrupted frames fail MAC verification and are dropped;
//! * a crashed primary breaks queue pairs / streams, the live replicas
//!   view-change to a new primary, and the transport layer re-dials the
//!   restarted host with exponential backoff.

use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{
    ByzantineMode, Client, CounterService, NioTransport, RecoveryConfig, RecoveryScheduler,
    Replica, ReptorConfig, RubinTransport, Transport, DOMAIN_SECRET,
};
use rubin::RubinConfig;
use simnet::{ChaosAction, ChaosSchedule, CoreId, HostId, Nanos, Network, Simulator, TestBed};
use simnet_socket::TcpModel;

/// Seed for the chaos timeline; CI sweeps this via the environment.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[derive(Clone, Copy)]
enum StackKind {
    Nio,
    Rubin,
}

/// The concrete transport endpoints, kept so scenarios can assert on
/// reconnect counters after the protocol layer is done with them.
enum Stacks {
    Nio(Vec<NioTransport>),
    Rubin(Vec<RubinTransport>),
}

impl Stacks {
    fn reconnect_attempts(&self) -> u64 {
        match self {
            Stacks::Nio(ts) => ts.iter().map(NioTransport::reconnect_attempts).sum(),
            Stacks::Rubin(ts) => ts.iter().map(RubinTransport::reconnect_attempts).sum(),
        }
    }

    fn reconnects_completed(&self) -> u64 {
        match self {
            Stacks::Nio(ts) => ts.iter().map(NioTransport::reconnects_completed).sum(),
            Stacks::Rubin(ts) => ts.iter().map(RubinTransport::reconnects_completed).sum(),
        }
    }
}

struct World {
    sim: Simulator,
    net: Network,
    hosts: Vec<HostId>,
    replicas: Vec<Replica>,
    client: Client,
    stacks: Stacks,
}

fn build(kind: StackKind, seed: u64) -> World {
    build_cfg(kind, seed, ReptorConfig::small())
}

fn build_cfg(kind: StackKind, seed: u64, cfg: ReptorConfig) -> World {
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(seed, n + 1);
    let nodes: Vec<(u32, HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let (stacks, transports): (Stacks, Vec<Rc<dyn Transport>>) = match kind {
        StackKind::Nio => {
            let ts = NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon());
            let dyns = ts
                .iter()
                .map(|t| Rc::new(t.clone()) as Rc<dyn Transport>)
                .collect();
            (Stacks::Nio(ts), dyns)
        }
        StackKind::Rubin => {
            let ts = RubinTransport::build_group(
                &mut sim,
                &net,
                &nodes,
                RnicModel::mt27520(),
                RubinConfig::paper(),
            );
            let dyns = ts
                .iter()
                .map(|t| Rc::new(t.clone()) as Rc<dyn Transport>)
                .collect();
            (Stacks::Rubin(ts), dyns)
        }
    };
    // Let the mesh establish before faults or traffic start.
    sim.run_until_idle();

    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                Box::new(CounterService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg, DOMAIN_SECRET, transports[n].clone());
    World {
        sim,
        net,
        hosts,
        replicas,
        client,
        stacks,
    }
}

fn run_to_completion(w: &mut World, want: u64) {
    let mut guard: u64 = 0;
    while w.client.stats().completed < want {
        assert!(w.sim.step(), "simulation went idle before completion");
        guard += 1;
        assert!(guard < 20_000_000, "agreement stalled");
    }
}

fn assert_total_order(replicas: &[Replica]) {
    let logs: Vec<_> = replicas.iter().map(Replica::executed_log).collect();
    for a in &logs {
        for b in &logs {
            for (sa, da) in a {
                for (sb, db) in b {
                    if sa == sb {
                        assert_eq!(da, db, "divergent execution at seq {sa}");
                    }
                }
            }
        }
    }
}

/// Installs directional loss `p` on every ordered host pair.
fn lossy_mesh(w: &World, p: f64) {
    w.net.with_faults(|f| {
        for &a in &w.hosts {
            for &b in &w.hosts {
                if a != b {
                    f.set_loss(a, b, p);
                }
            }
        }
    });
}

/// Agreement under packet loss: the per-stack reliability layer (RC
/// retransmission / TCP go-back-N) absorbs 1–5% drop rates without the
/// protocol noticing.
fn loss_scenario(kind: StackKind, seed: u64) {
    let mut w = build(kind, seed);
    // 1%..5% depending on the seed, so the CI matrix sweeps the range.
    let p = 0.01 * (1 + seed % 5) as f64;
    lossy_mesh(&w, p);
    let client = w.client.clone();
    for _ in 0..10 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 10);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 10, "replica {}", r.id());
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 10u64.to_le_bytes(), "exactly-once execution");
}

#[test]
fn pbft_reaches_agreement_under_loss_on_rubin_stack() {
    loss_scenario(StackKind::Rubin, chaos_seed());
}

#[test]
fn pbft_reaches_agreement_under_loss_on_nio_stack() {
    loss_scenario(StackKind::Nio, chaos_seed());
}

/// Duplicated and reordered frames must never double-execute a request:
/// the QP/TCP sequence layer suppresses wire-level duplicates and the
/// replica's client-request dedup absorbs client resends.
fn dup_reorder_scenario(kind: StackKind, seed: u64) {
    let mut w = build(kind, seed);
    w.net.with_faults(|f| {
        for &a in &w.hosts {
            for &b in &w.hosts {
                if a != b {
                    f.set_duplication(a, b, 0.3);
                    f.set_reorder_jitter(a, b, Nanos::from_micros(2));
                }
            }
        }
    });
    let client = w.client.clone();
    for _ in 0..10 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 10);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(
            r.stats().executed_requests,
            10,
            "duplicates must not re-execute on replica {}",
            r.id()
        );
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 10u64.to_le_bytes(), "counter incremented exactly 10x");
    if matches!(kind, StackKind::Rubin) {
        // The RDMA receive path saw and suppressed wire duplicates.
        let snap = w.net.metrics().snapshot();
        assert!(
            snap.total("duplicates_suppressed") > 0,
            "30% duplication must hit the QP dedup window"
        );
    }
}

#[test]
fn duplicated_and_reordered_frames_execute_exactly_once_on_rubin_stack() {
    dup_reorder_scenario(StackKind::Rubin, chaos_seed());
}

#[test]
fn duplicated_and_reordered_frames_execute_exactly_once_on_nio_stack() {
    dup_reorder_scenario(StackKind::Nio, chaos_seed());
}

/// Client-request idempotence under resend-like pressure: with every
/// client→replica frame duplicated, each replica receives every request
/// at least twice yet executes it once (replica-level dedup, above the
/// wire-level sequence dedup).
#[test]
fn duplicated_client_requests_are_deduplicated_by_replicas() {
    let mut w = build(StackKind::Rubin, chaos_seed());
    let client_host = *w.hosts.last().unwrap();
    w.net.with_faults(|f| {
        for &h in &w.hosts[..w.hosts.len() - 1] {
            f.set_duplication(client_host, h, 1.0);
            f.set_reorder_jitter(client_host, h, Nanos::from_micros(3));
        }
    });
    let client = w.client.clone();
    for _ in 0..5 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 5);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 5, "replica {}", r.id());
    }
    assert_eq!(client.stats().completed, 5);
    assert_eq!(client.completions().len(), 5);
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(
        last,
        5u64.to_le_bytes(),
        "each request applied exactly once"
    );
}

/// Corrupted frames must die at the MAC check, and agreement must ride
/// out the induced message loss (Rubin stack: corruption flips payload
/// bytes inside the RDMA data packets).
#[test]
fn corrupted_frames_are_rejected_by_mac_and_agreement_survives() {
    let mut w = build(StackKind::Rubin, chaos_seed());
    // Corrupt only replica↔replica links; the client's links stay clean so
    // requests and replies flow. MACs turn corruption into plain loss.
    let replica_hosts = &w.hosts[..w.hosts.len() - 1];
    w.net.with_faults(|f| {
        for &a in replica_hosts {
            for &b in replica_hosts {
                if a != b {
                    f.set_corruption(a, b, 0.05);
                }
            }
        }
    });
    let client = w.client.clone();
    for _ in 0..8 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 8);
    w.sim.run_until_idle();
    assert_total_order(&w.replicas);
    let bad_macs: u64 = w.replicas.iter().map(|r| r.stats().bad_mac_dropped).sum();
    assert!(
        bad_macs > 0,
        "5% corruption must surface as MAC rejections somewhere"
    );
    for r in &w.replicas {
        assert_eq!(r.stats().executed_requests, 8, "replica {}", r.id());
    }
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 8u64.to_le_bytes());
}

/// The flagship recovery scenario: the primary's host loses power
/// mid-workload. Live replicas' queue pairs / streams to it break, they
/// view-change to a new primary and keep executing; the transport layer
/// re-dials the dead host with exponential backoff until it restarts,
/// after which the mesh is whole again — and nothing executed twice.
///
/// Returns the run's metrics snapshot JSON for the determinism test.
fn primary_crash_scenario(kind: StackKind, seed: u64) -> String {
    let mut w = build(kind, seed);
    let client = w.client.clone();

    // Phase 1: a healthy prefix under the original primary (replica 0).
    for _ in 0..3 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 3);
    w.sim.run_until_idle();
    assert_eq!(w.replicas[0].stats().executed_requests, 3);

    // Phase 2: the primary's host crashes (scripted, replayable).
    let t_crash = w.sim.now() + Nanos::from_micros(100);
    ChaosSchedule::new()
        .at(t_crash, ChaosAction::CrashHost { host: w.hosts[0] })
        .install(&mut w.sim, &w.net);
    let r0 = w.replicas[0].clone();
    w.sim.schedule_at(
        t_crash,
        Box::new(move |_sim| {
            r0.set_byzantine(ByzantineMode::Crash);
        }),
    );
    w.sim.run_until(t_crash + Nanos::from_micros(1));

    // Phase 3: requests submitted into the faulty window. Backups arm
    // view-change timers, depose the dead primary, and commit under the
    // new one while the transports keep re-dialing the dead host.
    for _ in 0..5 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 8);
    for r in &w.replicas[1..] {
        assert!(r.view() >= 1, "replica {} must have view-changed", r.id());
        assert_eq!(r.stats().executed_requests, 8, "replica {}", r.id());
    }
    assert!(
        w.stacks.reconnect_attempts() > 0,
        "peers must have re-dialed the crashed host"
    );

    // Phase 4: the host restarts; backoff re-dials now land and the mesh
    // heals. The peers' holding-pen queues carried recent protocol traffic
    // addressed to the dead host across the outage (bounded at PEN_CAP
    // frames), so on reconnect the revived replica replays the backlog and
    // catches up per-instance; a replica that fell below the watermark
    // recovers via checkpoint state transfer instead (see the
    // state-transfer scenarios below).
    let t_heal = w.sim.now() + Nanos::from_millis(1);
    ChaosSchedule::new()
        .at(t_heal, ChaosAction::RestartHost { host: w.hosts[0] })
        .install(&mut w.sim, &w.net);
    let r0 = w.replicas[0].clone();
    w.sim.schedule_at(
        t_heal,
        Box::new(move |_sim| {
            r0.set_byzantine(ByzantineMode::Honest);
        }),
    );
    // Backoff caps at 64 ms; give the slowest dialer two full windows.
    w.sim.run_until(t_heal + Nanos::from_millis(150));

    assert!(
        w.stacks.reconnects_completed() > 0,
        "re-dials must succeed once the host is back"
    );
    // Exactly-once execution end to end: the live replicas executed the
    // full workload exactly once each; the revived replica holds its
    // pre-crash prefix plus however much of the replayed backlog it could
    // commit — never more than the workload, never a duplicate.
    assert_total_order(&w.replicas);
    for r in &w.replicas[1..] {
        assert_eq!(r.stats().executed_requests, 8, "replica {}", r.id());
    }
    let revived = w.replicas[0].stats().executed_requests;
    assert!(
        (3..=8).contains(&revived),
        "revived replica executed {revived}, outside its possible range"
    );
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 8u64.to_le_bytes(), "no request executed twice");
    w.net.metrics().snapshot().to_json()
}

#[test]
fn primary_crash_view_change_and_reconnect_on_rubin_stack() {
    let json = primary_crash_scenario(StackKind::Rubin, chaos_seed());
    // The snapshot records the recovery machinery that ran.
    assert!(json.contains("reconnect_attempts"));
    assert!(json.contains("reconnects_completed"));
    assert!(json.contains("retransmits"));
}

#[test]
fn primary_crash_view_change_and_reconnect_on_nio_stack() {
    let json = primary_crash_scenario(StackKind::Nio, chaos_seed());
    assert!(json.contains("reconnect_attempts"));
    assert!(json.contains("reconnects_completed"));
    assert!(json.contains("retransmits"));
}

/// The whole failure timeline — fault coins, retransmissions, view
/// change, reconnect backoff — replays byte-identically from a seed.
#[test]
fn fixed_seed_crash_timeline_replays_byte_identically() {
    let a = primary_crash_scenario(StackKind::Rubin, chaos_seed());
    let b = primary_crash_scenario(StackKind::Rubin, chaos_seed());
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");
}

/// Submits `count` requests one at a time, waiting for each to complete,
/// so every request lands in its own agreement instance (concurrent
/// submission would batch them and collapse the checkpoint-interval
/// arithmetic the state-transfer scenarios rely on).
fn submit_sequentially(w: &mut World, count: u64, already_done: u64) {
    let client = w.client.clone();
    for i in 0..count {
        client.submit(&mut w.sim, b"inc".to_vec());
        run_to_completion(w, already_done + i + 1);
    }
}

/// The tentpole recovery scenario: one backup is partitioned away while
/// the rest of the group executes more than two checkpoint intervals.
/// The live replicas' stable checkpoint moves past the laggard's whole
/// watermark window, their per-instance logs are truncated below it, and
/// the bounded holding pens shed the backlog — so when the partition
/// heals, replayed traffic cannot rebuild the missed instances and the
/// laggard's only way back is a full checkpoint state transfer (one-sided
/// RDMA READs on the RUBIN stack, chunk messages on the socket stack),
/// after which it rejoins live agreement.
///
/// `responder_fault` optionally makes one state-serving backup Byzantine:
/// it still votes for the correct checkpoint roots (so it is counted in
/// the `f + 1` certificate and is the laggard's *first* fetch target),
/// but serves corrupted or stale bytes. The per-chunk digest checks must
/// detect this and route the transfer around it.
///
/// Returns the run's metrics snapshot JSON for the determinism test.
fn state_transfer_scenario(kind: StackKind, responder_fault: ByzantineMode, seed: u64) -> String {
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let interval = cfg.checkpoint_interval;
    let mut w = build_cfg(kind, seed, cfg);
    let laggard = w.replicas[2].clone();

    // Phase 1: a healthy prefix everyone executes and checkpoints.
    submit_sequentially(&mut w, 3, 0);
    w.sim.run_until_idle();
    assert_eq!(laggard.last_executed(), 3);

    // Replica 3 may be a Byzantine *state server*; its agreement role
    // stays honest so checkpoint certificates still form.
    w.replicas[3].set_byzantine(responder_fault);

    // Phase 2: cut the laggard off from every other host, client included.
    let laggard_host = w.hosts[2];
    let t_cut = w.sim.now() + Nanos::from_micros(10);
    let mut cut = ChaosSchedule::new();
    for &h in &w.hosts {
        if h != laggard_host {
            cut.push(
                t_cut,
                ChaosAction::Partition {
                    a: laggard_host,
                    b: h,
                },
            );
        }
    }
    cut.install(&mut w.sim, &w.net);
    w.sim.run_until(t_cut + Nanos::from_micros(1));

    // Phase 3: the live trio executes three more checkpoint intervals,
    // then the partition holds long enough for the reliability layer to
    // give up on the unreachable peer — the queue pairs / streams break
    // after retry exhaustion and the holding pens shed the backlog. This
    // is what makes the scenario a true long outage: on heal, replay
    // cannot resurrect the missed instances.
    submit_sequentially(&mut w, 3 * interval, 3);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));
    assert_eq!(laggard.last_executed(), 3, "partitioned replica is frozen");
    for r in [&w.replicas[0], &w.replicas[1], &w.replicas[3]] {
        assert!(
            r.low_mark() >= laggard.last_executed() + 2 * interval,
            "stable checkpoint must clear the laggard's watermark window \
             (low_mark {} vs laggard at {})",
            r.low_mark(),
            laggard.last_executed()
        );
    }

    // Phase 4: heal and give the re-dial backoff (64 ms cap) time to
    // rebuild the mesh.
    let t_heal = w.sim.now() + Nanos::from_micros(10);
    let mut heal = ChaosSchedule::new();
    for &h in &w.hosts {
        if h != laggard_host {
            heal.push(
                t_heal,
                ChaosAction::Heal {
                    a: laggard_host,
                    b: h,
                },
            );
        }
    }
    heal.install(&mut w.sim, &w.net);
    w.sim.run_until(t_heal + Nanos::from_millis(150));

    // Phase 5: new workload. The requests reach the laggard too; its
    // stalled-request timers trigger catch-up, whose unservable answers
    // carry checkpoint attestations that steer it into state transfer;
    // the grace timer, the transfer itself and the per-instance tail all
    // run on the 40 ms protocol timeout.
    let total = 3 + 3 * interval;
    submit_sequentially(&mut w, 3, total);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(400));

    let stats = laggard.stats();
    assert!(
        stats.state_transfers_started >= 1,
        "laggard must have entered state transfer"
    );
    assert!(
        stats.state_transfers_completed >= 1,
        "laggard must have completed a state transfer"
    );
    if responder_fault != ByzantineMode::Honest {
        assert!(
            stats.state_transfer_retries >= 1,
            "the Byzantine responder is the first fetch target; the digest \
             checks must have rejected it and rotated peers"
        );
    }

    assert_total_order(&w.replicas);
    assert_eq!(
        laggard.last_executed(),
        w.replicas[0].last_executed(),
        "recovered replica must track the head of the log"
    );
    let digests: Vec<_> = w
        .replicas
        .iter()
        .map(|r| r.with_service(|s| s.state_digest()))
        .collect();
    for d in &digests[1..] {
        assert_eq!(
            *d, digests[0],
            "every replica must hold byte-identical application state"
        );
    }
    w.net.metrics().snapshot().to_json()
}

#[test]
fn partitioned_replica_rejoins_via_state_transfer_on_rubin_stack() {
    let json = state_transfer_scenario(StackKind::Rubin, ByzantineMode::Honest, chaos_seed());
    // On the RDMA stack the chunks move by one-sided READs.
    assert!(json.contains("state_transfer_reads"));
    assert!(json.contains("\"reptor.r2.state_transfer_completed\":"));
}

#[test]
fn partitioned_replica_rejoins_via_state_transfer_on_nio_stack() {
    let json = state_transfer_scenario(StackKind::Nio, ByzantineMode::Honest, chaos_seed());
    assert!(json.contains("\"reptor.r2.state_transfer_completed\":"));
}

#[test]
fn bogus_state_chunks_responder_is_detected_and_routed_around() {
    state_transfer_scenario(
        StackKind::Rubin,
        ByzantineMode::BogusStateChunks,
        chaos_seed(),
    );
}

#[test]
fn bogus_state_chunks_responder_is_routed_around_on_nio_stack() {
    state_transfer_scenario(
        StackKind::Nio,
        ByzantineMode::BogusStateChunks,
        chaos_seed(),
    );
}

#[test]
fn stale_checkpoint_responder_is_detected_and_routed_around() {
    state_transfer_scenario(
        StackKind::Rubin,
        ByzantineMode::StaleCheckpoint,
        chaos_seed(),
    );
}

/// A full state transfer — partition, watermark lag, manifest and chunk
/// fetches, Byzantine route-around machinery armed, rejoin — replays
/// byte-identically from a fixed seed.
#[test]
fn fixed_seed_state_transfer_replays_byte_identically() {
    let a = state_transfer_scenario(StackKind::Rubin, ByzantineMode::Honest, chaos_seed());
    let b = state_transfer_scenario(StackKind::Rubin, ByzantineMode::Honest, chaos_seed());
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");
}

/// Cold restart: a backup's host loses power, the group executes far past
/// its window, and the host comes back with the replica's volatile state
/// gone. `Replica::restart` rebuilds it from a fresh service instance;
/// rejoin probes steer it through catch-up attestations into a state
/// transfer and back into live agreement.
fn restart_scenario(kind: StackKind, seed: u64) {
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let interval = cfg.checkpoint_interval;
    let mut w = build_cfg(kind, seed, cfg);
    let victim = w.replicas[1].clone();

    // Healthy prefix.
    submit_sequentially(&mut w, 3, 0);
    w.sim.run_until_idle();
    assert_eq!(victim.last_executed(), 3);

    // Power off the backup's host (scripted, replayable).
    let victim_host = w.hosts[1];
    let t_crash = w.sim.now() + Nanos::from_micros(100);
    ChaosSchedule::new()
        .at(t_crash, ChaosAction::CrashHost { host: victim_host })
        .install(&mut w.sim, &w.net);
    let v = victim.clone();
    w.sim.schedule_at(
        t_crash,
        Box::new(move |_sim| {
            v.set_byzantine(ByzantineMode::Crash);
        }),
    );
    w.sim.run_until(t_crash + Nanos::from_micros(1));

    // The live trio executes three checkpoint intervals, and the outage
    // lasts long enough for retry exhaustion to break the channels to the
    // dead host: the victim's history is truncated everywhere and the
    // holding pens shed the backlog.
    submit_sequentially(&mut w, 3 * interval, 3);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));
    for r in [&w.replicas[0], &w.replicas[2], &w.replicas[3]] {
        assert!(r.low_mark() >= 2 * interval);
    }

    // Power back on; the replica restarts cold — fresh service, empty
    // logs — and must rebuild itself from the group's checkpoint.
    let t_back = w.sim.now() + Nanos::from_millis(1);
    ChaosSchedule::new()
        .at(t_back, ChaosAction::RestartHost { host: victim_host })
        .install(&mut w.sim, &w.net);
    let v = victim.clone();
    w.sim.schedule_at(
        t_back,
        Box::new(move |sim| {
            v.restart(sim, Box::new(CounterService::default()));
        }),
    );
    w.sim.run_until(t_back + Nanos::from_millis(400));

    assert!(
        victim.stats().state_transfers_completed >= 1,
        "cold-restarted replica must have rebuilt itself by state transfer"
    );

    // The rejoined replica executes new requests with everyone else.
    let total = 3 + 3 * interval;
    submit_sequentially(&mut w, 3, total);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));
    assert_total_order(&w.replicas);
    assert_eq!(victim.last_executed(), w.replicas[0].last_executed());
    let digests: Vec<_> = w
        .replicas
        .iter()
        .map(|r| r.with_service(|s| s.state_digest()))
        .collect();
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "restarted replica state must converge");
    }
}

#[test]
fn crashed_backup_restarts_cold_and_rejoins_via_state_transfer_on_rubin_stack() {
    restart_scenario(StackKind::Rubin, chaos_seed());
}

#[test]
fn crashed_backup_restarts_cold_and_rejoins_via_state_transfer_on_nio_stack() {
    restart_scenario(StackKind::Nio, chaos_seed());
}

/// Proactive recovery colliding with a partition: a full epoch rotation
/// starts while one replica is cut off from the rest of the group. The
/// stagger bound means each live refresh takes exactly one more replica
/// out, so the scheduler must march through the live members one at a
/// time (each rejoins by state transfer from the two remaining peers),
/// burn the refresh deadline on the unreachable victim instead of
/// wedging, and complete the rotation. After the heal the abandoned
/// replica — restarted cold into the partition — recovers through its
/// own rejoin probes and converges.
fn refresh_partition_collision_scenario(kind: StackKind, seed: u64) {
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let mut w = build_cfg(kind, seed, cfg);

    // Healthy prefix past the first checkpoint, so every replica holds a
    // certified store a refreshed member can rebuild from.
    submit_sequentially(&mut w, 6, 0);
    w.sim.run_until_idle();

    // Cut replica 2 off from every other host, client included.
    let cut_host = w.hosts[2];
    let t_cut = w.sim.now() + Nanos::from_micros(10);
    let mut cut = ChaosSchedule::new();
    for &h in &w.hosts {
        if h != cut_host {
            cut.push(t_cut, ChaosAction::Partition { a: cut_host, b: h });
        }
    }
    cut.install(&mut w.sim, &w.net);
    w.sim.run_until(t_cut + Nanos::from_micros(1));

    // One full rotation, started into the partition.
    let sched = RecoveryScheduler::new(
        w.replicas.clone(),
        RecoveryConfig {
            period: Nanos::from_millis(10),
            poll: Nanos::from_millis(2),
            refresh_deadline: Nanos::from_millis(250),
        },
        w.net.metrics(),
        Box::new(|| Box::new(CounterService::default())),
    );
    sched.start(&mut w.sim, 1);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(1500));

    let stats = sched.stats();
    assert_eq!(stats.rotations_completed, 1, "rotation must finish");
    assert_eq!(
        stats.refreshes_completed, 3,
        "the live replicas refresh through the outage"
    );
    assert_eq!(
        stats.refresh_timeouts, 1,
        "the partitioned victim cannot rejoin and must be abandoned at \
         the deadline instead of wedging the rotation"
    );
    for r in [&w.replicas[0], &w.replicas[1], &w.replicas[3]] {
        assert_eq!(r.recovery_epoch(), 1, "replica {}", r.id());
        assert!(
            r.stats().state_transfers_completed >= 1,
            "refreshed replica {} must have rebuilt by state transfer",
            r.id()
        );
    }

    // Heal; the abandoned replica was restarted cold into the partition,
    // so its rejoin probes (exponential backoff) now find the group and
    // steer it through catch-up into a state transfer.
    let t_heal = w.sim.now() + Nanos::from_micros(10);
    let mut heal = ChaosSchedule::new();
    for &h in &w.hosts {
        if h != cut_host {
            heal.push(t_heal, ChaosAction::Heal { a: cut_host, b: h });
        }
    }
    heal.install(&mut w.sim, &w.net);
    w.sim.run_until(t_heal + Nanos::from_millis(150));

    submit_sequentially(&mut w, 3, 6);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(2000));

    let victim = &w.replicas[2];
    assert!(
        victim.stats().state_transfers_completed >= 1,
        "healed victim must have rebuilt by state transfer"
    );
    assert_total_order(&w.replicas);
    assert_eq!(victim.last_executed(), w.replicas[0].last_executed());
    let digests: Vec<_> = w
        .replicas
        .iter()
        .map(|r| r.with_service(|s| s.state_digest()))
        .collect();
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "refreshed group state must converge");
    }
    let snap = w.net.metrics().snapshot();
    assert_eq!(snap.total("proactive_rotations_completed"), 1);
    assert_eq!(snap.total("proactive_refresh_timeouts"), 1);
}

#[test]
fn proactive_refresh_collides_with_partition_on_rubin_stack() {
    refresh_partition_collision_scenario(StackKind::Rubin, chaos_seed());
}

#[test]
fn proactive_refresh_collides_with_partition_on_nio_stack() {
    refresh_partition_collision_scenario(StackKind::Nio, chaos_seed());
}

/// A Byzantine responder advertising a stale-epoch rkey, on the RDMA
/// stack. After the recovery-epoch roll re-registers every checkpoint
/// store, replica 3 keeps advertising the *revoked* rkey — re-tagged
/// with the current epoch, so nothing in the message path looks stale:
/// its checkpoint votes certify the correct root, its epoch field passes
/// the responder check, and it serves the manifest honestly. The lie is
/// only caught where the paper puts the trust boundary: the responder's
/// RNIC denies the one-sided READ against the invalidated registration
/// (`stale_rkey_denied`), the fetcher sees the failed READ and rotates
/// to the next attester. RNIC-fenced, not digest-detected.
fn stale_epoch_offer_scenario(seed: u64) -> String {
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let interval = cfg.checkpoint_interval;
    let mut w = build_cfg(StackKind::Rubin, seed, cfg);
    let laggard = w.replicas[2].clone();

    // Healthy prefix; replica 3's agreement role stays honest so
    // checkpoint certificates still form — it lies only as a state
    // server, and only after the epoch roll arms `stale_offer`.
    submit_sequentially(&mut w, 3, 0);
    w.sim.run_until_idle();
    w.replicas[3].set_byzantine(ByzantineMode::StaleEpochOffer);

    // Partition the laggard, then let the live trio execute three more
    // checkpoint intervals so its only way back is a state transfer.
    let laggard_host = w.hosts[2];
    let t_cut = w.sim.now() + Nanos::from_micros(10);
    let mut cut = ChaosSchedule::new();
    for &h in &w.hosts {
        if h != laggard_host {
            cut.push(
                t_cut,
                ChaosAction::Partition {
                    a: laggard_host,
                    b: h,
                },
            );
        }
    }
    cut.install(&mut w.sim, &w.net);
    w.sim.run_until(t_cut + Nanos::from_micros(1));
    submit_sequentially(&mut w, 3 * interval, 3);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));

    // The scheduler's fence step, applied directly for exact timing:
    // every replica re-registers its stores under epoch 1 and the old
    // memory regions are invalidated. Replica 3 squirrels away its
    // revoked offer and will advertise it from now on.
    for r in &w.replicas {
        r.roll_recovery_epoch(&mut w.sim, 1);
    }
    w.sim.run_until(w.sim.now() + Nanos::from_millis(50));

    // Heal and drive new workload; the laggard's catch-up attestations
    // (all epoch-1, replica 3's carrying the revoked rkey) steer it into
    // a transfer whose first fetch target is replica 3.
    let t_heal = w.sim.now() + Nanos::from_micros(10);
    let mut heal = ChaosSchedule::new();
    for &h in &w.hosts {
        if h != laggard_host {
            heal.push(
                t_heal,
                ChaosAction::Heal {
                    a: laggard_host,
                    b: h,
                },
            );
        }
    }
    heal.install(&mut w.sim, &w.net);
    w.sim.run_until(t_heal + Nanos::from_millis(150));
    let total = 3 + 3 * interval;
    submit_sequentially(&mut w, 3, total);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(400));

    let stats = laggard.stats();
    assert!(stats.state_transfers_started >= 1);
    assert!(
        stats.state_transfers_completed >= 1,
        "laggard must complete the transfer from an honest responder"
    );
    assert!(
        stats.state_transfer_retries >= 1,
        "the READ against the revoked rkey must fail and rotate peers"
    );
    let snap = w.net.metrics().snapshot();
    assert!(
        snap.total("stale_rkey_denied") >= 1,
        "the responder RNIC must deny the stale rkey"
    );
    // The fence fired below the protocol: no responder ever saw a
    // stale-looking epoch field and no digest check was involved in
    // catching the lie (a revoked rkey returns no bytes to check).
    for r in &w.replicas {
        assert_eq!(
            r.stats().stale_epoch_rejected,
            0,
            "replica {}: the stale offer must not be detectable in the \
             message path",
            r.id()
        );
    }

    assert_total_order(&w.replicas);
    assert_eq!(laggard.last_executed(), w.replicas[0].last_executed());
    let digests: Vec<_> = w
        .replicas
        .iter()
        .map(|r| r.with_service(|s| s.state_digest()))
        .collect();
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "state must converge despite the lie");
    }
    snap.to_json()
}

#[test]
fn stale_epoch_rkey_responder_is_fenced_by_rnic_on_rubin_stack() {
    let json = stale_epoch_offer_scenario(chaos_seed());
    assert!(json.contains("stale_rkey_denied"));
    assert!(json.contains("mr_rotations"));
}

/// An equivocating leader on the one-sided fast path: it WRITEs one batch
/// into half the followers' slots and a conflicting batch into the other
/// half. The RNIC permission check cannot see this — the leader
/// legitimately holds every grant — so detection must stay exactly where
/// PBFT puts it: the conflicting digests never gather a prepare quorum,
/// the backup timers fire, and the group view-changes to an honest
/// leader who re-proposes and commits everything exactly once.
fn equivocating_slot_writer_scenario(seed: u64) -> String {
    let cfg = ReptorConfig {
        fast_path: true,
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let mut w = build_cfg(StackKind::Rubin, seed, cfg);
    let client = w.client.clone();

    // Healthy prefix: the followers' slot grants reach the leader, so
    // the equivocation below rides the fast path, not the message path.
    for _ in 0..3 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 3);
    w.sim.run_until_idle();
    assert!(
        w.replicas[0].stats().fast_path_writes > 0,
        "grants must be armed before the equivocation starts"
    );

    w.replicas[0].set_byzantine(ByzantineMode::EquivocatingPrimary);
    for _ in 0..5 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 8);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));

    for r in &w.replicas[1..] {
        assert!(
            r.view() >= 1,
            "replica {} must have deposed the equivocator",
            r.id()
        );
        assert_eq!(r.stats().executed_requests, 8, "replica {}", r.id());
    }
    assert_total_order(&w.replicas);
    // Liveness: every request completed. Note the equivocator *may* get
    // one of its two versions committed (its tweaked payloads ride the
    // view-change proof merge — a known property of MAC-authenticated
    // PBFT, where replicas cannot verify client intent, fast path or
    // not); what matters is that all replicas execute the same version.
    assert_eq!(client.completions().len(), 8, "every request completes");
    let digests: Vec<_> = w
        .replicas
        .iter()
        .map(|r| r.with_service(|s| s.state_digest()))
        .collect();
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "one of the two versions, everywhere");
    }

    let snap = w.net.metrics().snapshot();
    // The lie travelled one-sided and was caught at the digest/prepare
    // layer, not by the RNIC: the equivocator held valid grants.
    assert!(
        snap.total("fast_path_deliveries") > 0,
        "conflicting batches must have arrived through the slots"
    );
    snap.to_json()
}

#[test]
fn equivocating_slot_writer_is_caught_at_prepare_and_deposed() {
    equivocating_slot_writer_scenario(chaos_seed());
}

/// A deposed leader firing its retained slot grants *after* the view
/// change: the followers invalidated their slot regions the moment they
/// voted, so every late WRITE is denied in the target RNIC
/// (`fast_path_write_denied`) — the revocation fence, not protocol code,
/// stops the stale proposals. Meanwhile the new leader receives fresh
/// grants and the fast path resumes under the new view.
fn deposed_slot_writer_scenario(seed: u64) -> String {
    let cfg = ReptorConfig {
        fast_path: true,
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let mut w = build_cfg(StackKind::Rubin, seed, cfg);
    let client = w.client.clone();

    // Healthy prefix under replica 0, so it holds live slot grants.
    for _ in 0..3 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 3);
    w.sim.run_until_idle();
    assert!(w.replicas[0].stats().fast_path_writes > 0);

    // The leader goes silent but keeps its grants; once deposed it will
    // fire them into the revoked regions.
    w.replicas[0].set_byzantine(ByzantineMode::LateSlotWriter);
    for _ in 0..5 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 8);
    // Let the deposed leader learn of the new view and fire its stale
    // WRITEs, and the group settle.
    w.sim.run_until(w.sim.now() + Nanos::from_millis(100));

    // New workload under the new leader: by now the followers' fresh
    // grants (sent when they installed the view) have landed, so these
    // proposals ride the fast path again.
    for _ in 0..4 {
        client.submit(&mut w.sim, b"inc".to_vec());
    }
    run_to_completion(&mut w, 12);
    w.sim.run_until(w.sim.now() + Nanos::from_millis(50));

    for r in &w.replicas[1..] {
        assert!(r.view() >= 1, "replica {} must have view-changed", r.id());
        assert_eq!(r.stats().executed_requests, 12, "replica {}", r.id());
    }
    assert_total_order(&w.replicas);
    let last = client.completions().last().unwrap().result.clone();
    assert_eq!(last, 12u64.to_le_bytes(), "no stale proposal may execute");

    let snap = w.net.metrics().snapshot();
    assert!(
        snap.total("fast_path_write_denied") >= 1,
        "the deposed leader's late WRITEs must be RNIC-denied"
    );
    assert!(
        snap.total("fast_path_revocations") >= 3,
        "every follower must have invalidated its region when it voted"
    );
    // The fast path resumes under the new leader with fresh grants.
    let new_leader = w.replicas[1].stats();
    assert!(
        new_leader.fast_path_writes > 0,
        "the new leader must propose one-sided under the new view"
    );
    snap.to_json()
}

#[test]
fn deposed_slot_writer_late_writes_are_rnic_denied() {
    deposed_slot_writer_scenario(chaos_seed());
}

/// The deposed-leader fence timeline — grants, silence, view change,
/// revocation, denied late WRITEs — replays byte-identically from a
/// fixed seed.
#[test]
fn fixed_seed_deposed_slot_writer_replays_byte_identically() {
    let a = deposed_slot_writer_scenario(chaos_seed());
    let b = deposed_slot_writer_scenario(chaos_seed());
    assert_eq!(a, b, "same seed must give a byte-identical snapshot");
}
