//! Security scenarios from the paper's §III-C analysis.
//!
//! The paper argues RUBIN's two-sided design avoids the attacks that
//! plague one-sided RDMA deployments: buffer races, Steering-Tag (STag)
//! theft enabling man-in-the-middle reads/writes, and STag invalidation
//! denial-of-service. These tests exercise the corresponding enforcement
//! in the verbs layer, and the protocol-level containment (a replica with
//! compromised memory "cannot operate reliably ... and will therefore be
//! considered faulty, which can be tolerated by the protocol").

use rdma_verbs::{
    connect_pair, Access, QpConfig, RdmaDevice, RecvWr, RnicModel, SendWr, Sge, WcStatus, WrId,
};
use simnet::{CoreId, TestBed};

struct Host {
    dev: RdmaDevice,
    pd: rdma_verbs::ProtectionDomain,
    cq: rdma_verbs::CompletionQueue,
}

fn host_on(tb: &TestBed, id: simnet::HostId) -> Host {
    let dev = RdmaDevice::open(&tb.net, id, RnicModel::mt27520());
    let pd = dev.alloc_pd();
    let cq = dev.create_cq(64, None);
    Host { dev, pd, cq }
}

fn qp_for(h: &Host) -> rdma_verbs::QueuePair {
    h.dev.create_qp(&QpConfig {
        pd: h.pd,
        send_cq: h.cq.clone(),
        recv_cq: h.cq.clone(),
        core: CoreId(0),
    })
}

/// §III-C: "An adversary might get access to a buffer with STag enabled
/// access, which allows her to conduct a Man-in-the-Middle attack. She can
/// now read or modify the contents of this buffer." — possible only for
/// regions that *grant* remote access; a two-sided deployment grants none,
/// so the same stolen STag is useless.
#[test]
fn stolen_stag_useless_against_two_sided_buffers() {
    let mut tb = TestBed::paper_testbed(51);
    let victim = host_on(&tb, tb.b);
    let attacker = host_on(&tb, tb.a);

    // The victim's receive buffer, as RUBIN would register it: local write
    // only, no remote rights.
    let secret = victim.dev.reg_mr(&victim.pd, 4096, Access::LOCAL_WRITE);
    secret.write(0, b"replica private state").unwrap();
    let stolen_stag = secret.rkey(); // assume the attacker learned the key

    let vqp = qp_for(&victim);
    let aqp = qp_for(&attacker);
    connect_pair(&aqp, &vqp).unwrap();

    // Attempted MITM read.
    let sink = attacker.dev.reg_mr(&attacker.pd, 4096, Access::LOCAL_WRITE);
    aqp.post_send(
        &mut tb.sim,
        SendWr::read(WrId(1), Sge::whole(sink.clone()), stolen_stag, 0).signaled(),
    )
    .unwrap();
    tb.sim.run_until_idle();
    let wc = attacker.cq.poll(8);
    assert_eq!(wc[0].status, WcStatus::RemoteAccessError, "read refused");
    assert_eq!(sink.read(0, 7).unwrap(), vec![0; 7], "no data leaked");

    // Attempted MITM write (fresh connection: the NAK broke the first).
    let vqp2 = qp_for(&victim);
    let aqp2 = qp_for(&attacker);
    connect_pair(&aqp2, &vqp2).unwrap();
    let payload = attacker.dev.reg_mr(&attacker.pd, 32, Access::NONE);
    payload.write(0, b"overwritten-by-mallory!").unwrap();
    aqp2.post_send(
        &mut tb.sim,
        SendWr::write(WrId(2), Sge::whole(payload), stolen_stag, 0).signaled(),
    )
    .unwrap();
    tb.sim.run_until_idle();
    let wc = attacker.cq.poll(8);
    assert_eq!(wc[0].status, WcStatus::RemoteAccessError, "write refused");
    assert_eq!(
        secret.read(0, 21).unwrap(),
        b"replica private state",
        "victim memory untouched"
    );
}

/// §III-C: even when a deployment does expose a region, the access flags
/// bound what a stolen STag can do (read-only stays read-only).
#[test]
fn access_flags_bound_remote_capability() {
    let mut tb = TestBed::paper_testbed(52);
    let victim = host_on(&tb, tb.b);
    let attacker = host_on(&tb, tb.a);
    let exposed = victim
        .dev
        .reg_mr(&victim.pd, 1024, Access::LOCAL_WRITE | Access::REMOTE_READ);
    exposed.write(0, b"public-read-only").unwrap();

    let vqp = qp_for(&victim);
    let aqp = qp_for(&attacker);
    connect_pair(&aqp, &vqp).unwrap();

    // Reads succeed…
    let sink = attacker.dev.reg_mr(&attacker.pd, 1024, Access::LOCAL_WRITE);
    aqp.post_send(
        &mut tb.sim,
        SendWr::read(WrId(1), Sge::new(sink.clone(), 0, 16), exposed.rkey(), 0).signaled(),
    )
    .unwrap();
    tb.sim.run_until_idle();
    assert!(attacker.cq.poll(8)[0].is_ok());
    assert_eq!(sink.read(0, 16).unwrap(), b"public-read-only");

    // …but writes through the same STag are refused.
    let vqp2 = qp_for(&victim);
    let aqp2 = qp_for(&attacker);
    connect_pair(&aqp2, &vqp2).unwrap();
    let payload = attacker.dev.reg_mr(&attacker.pd, 16, Access::NONE);
    aqp2.post_send(
        &mut tb.sim,
        SendWr::write(WrId(2), Sge::whole(payload), exposed.rkey(), 0).signaled(),
    )
    .unwrap();
    tb.sim.run_until_idle();
    assert_eq!(attacker.cq.poll(8)[0].status, WcStatus::RemoteAccessError);
    assert_eq!(exposed.read(0, 16).unwrap(), b"public-read-only");
}

/// §III-C: "or even invalidate the STag which prevents access of
/// legitimate applications" — invalidation makes every subsequent access
/// fail, which the affected replica must surface as a fault rather than
/// serve corrupt data.
#[test]
fn invalidated_stag_denies_everyone_loudly() {
    let mut tb = TestBed::paper_testbed(53);
    let victim = host_on(&tb, tb.b);
    let peer = host_on(&tb, tb.a);
    let region = victim
        .dev
        .reg_mr(&victim.pd, 1024, Access::LOCAL_WRITE | Access::REMOTE_WRITE);

    let vqp = qp_for(&victim);
    let pqp = qp_for(&peer);
    connect_pair(&pqp, &vqp).unwrap();

    // Attacker invalidates the STag (compromised victim process).
    region.invalidate();

    // The legitimate peer's write now fails with an explicit error — the
    // replica is observably faulty, not silently corrupt.
    let payload = peer.dev.reg_mr(&peer.pd, 64, Access::NONE);
    pqp.post_send(
        &mut tb.sim,
        SendWr::write(WrId(1), Sge::whole(payload), region.rkey(), 0).signaled(),
    )
    .unwrap();
    tb.sim.run_until_idle();
    assert_eq!(peer.cq.poll(8)[0].status, WcStatus::RemoteAccessError);
    // And local application access fails too.
    assert!(region.read(0, 1).is_err());
}

/// §III-C + §III-A: two-sided transfers place data only where the
/// *receiver* decided — a sender cannot steer a SEND into memory of its
/// choosing, and out-of-bounds placement is impossible by construction.
#[test]
fn receiver_chooses_placement_for_two_sided_transfers() {
    let mut tb = TestBed::paper_testbed(54);
    let rx = host_on(&tb, tb.b);
    let tx = host_on(&tb, tb.a);
    let rqp = qp_for(&rx);
    let sqp = qp_for(&tx);
    connect_pair(&sqp, &rqp).unwrap();

    // Receiver posts two disjoint slots in one region.
    let buf = rx.dev.reg_mr(&rx.pd, 256, Access::LOCAL_WRITE);
    rqp.post_recv(
        &mut tb.sim,
        RecvWr::new(WrId(10), Sge::new(buf.clone(), 0, 128)),
    )
    .unwrap();
    rqp.post_recv(
        &mut tb.sim,
        RecvWr::new(WrId(11), Sge::new(buf.clone(), 128, 128)),
    )
    .unwrap();

    for (i, msg) in [b"first!", b"second"].iter().enumerate() {
        let src = tx.dev.reg_mr(&tx.pd, 6, Access::NONE);
        src.write(0, *msg).unwrap();
        sqp.post_send(
            &mut tb.sim,
            SendWr::send(WrId(i as u64), Sge::whole(src)).signaled(),
        )
        .unwrap();
    }
    tb.sim.run_until_idle();
    // Data landed exactly in the receiver-chosen slots, in order.
    assert_eq!(buf.read(0, 6).unwrap(), b"first!");
    assert_eq!(buf.read(128, 6).unwrap(), b"second");
}

/// The protocol-level containment claim: a replica whose memory keys were
/// compromised (modelled as corrupted MACs / silence) is simply tolerated
/// as one of the `f` faults.
#[test]
fn compromised_replica_is_contained_by_the_protocol() {
    use reptor::{ByzantineMode, Cluster, CounterService, ReptorConfig};
    let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, 55, || {
        Box::new(CounterService::default())
    });
    // Replica 1's "memory was compromised": it now emits garbage MACs.
    c.replicas[1].set_byzantine(ByzantineMode::CorruptMacs);
    let client = c.clients[0].clone();
    for _ in 0..5 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(c.run_until_completed(5, 3_000_000));
    c.settle();
    c.assert_safety();
    let dropped: u64 = c.replicas.iter().map(|r| r.stats().bad_mac_dropped).sum();
    assert!(dropped > 0, "the compromise is detected, not absorbed");
    assert_eq!(c.replicas[0].last_executed(), 5, "service unaffected");
}
