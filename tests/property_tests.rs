//! Property-based tests on the core data structures and invariants,
//! spanning every crate in the workspace.

use bft_crypto::{hmac_sha256, sha256, verify_hmac, Digest, KeyTable, Sha256};
use chainstore::{Chain, Transaction};
use proptest::prelude::*;
use reptor::{
    Cluster, CounterService, KvOp, Message, PreparedProof, ReptorConfig, Request, SignedMessage,
};
use rubin::HybridEventQueue;
use simnet::{Bandwidth, Nanos, Simulator};

// ---------------------------------------------------------------------
// Crypto
// ---------------------------------------------------------------------

proptest! {
    /// Incremental hashing over arbitrary chunk boundaries equals the
    /// one-shot digest.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                 cuts in proptest::collection::vec(0usize..4096, 0..8)) {
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        points.sort_unstable();
        let mut prev = 0;
        for p in points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// HMAC verifies for the exact (key, message) pair and fails for any
    /// modified message.
    #[test]
    fn hmac_roundtrip_and_tamper(key in proptest::collection::vec(any::<u8>(), 0..128),
                                 msg in proptest::collection::vec(any::<u8>(), 0..512),
                                 flip in 0usize..512) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac(&key, &msg, &tag));
        if !msg.is_empty() {
            let mut tampered = msg.clone();
            let idx = flip % tampered.len();
            tampered[idx] ^= 0x01;
            prop_assert!(!verify_hmac(&key, &tampered, &tag));
        }
    }

    /// MAC-vector authenticators verify for every listed receiver and for
    /// no one else.
    #[test]
    fn authenticator_receiver_set(msg in proptest::collection::vec(any::<u8>(), 0..256),
                                  receivers in proptest::collection::btree_set(0u32..16, 1..8),
                                  outsider in 16u32..32) {
        let sender = KeyTable::new(99, b"prop-domain".to_vec());
        let rvec: Vec<u32> = receivers.iter().copied().collect();
        let auth = sender.authenticate(&msg, &rvec);
        for &r in &rvec {
            let table = KeyTable::new(r, b"prop-domain".to_vec());
            prop_assert!(table.verify(&msg, &auth));
        }
        let stranger = KeyTable::new(outsider, b"prop-domain".to_vec());
        prop_assert!(!stranger.verify(&msg, &auth));
    }
}

// ---------------------------------------------------------------------
// Codec / messages
// ---------------------------------------------------------------------

fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(client, timestamp, payload)| Request {
            client,
            timestamp,
            payload,
        })
}

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 32]>().prop_map(Digest)
}

fn arb_batch() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec(arb_request(), 0..4)
}

fn arb_message() -> impl Strategy<Value = Message> {
    let batch = arb_batch();
    prop_oneof![
        arb_request().prop_map(Message::Request),
        (any::<u64>(), any::<u64>(), arb_digest(), arb_batch()).prop_map(
            |(view, seq, digest, batch)| Message::PrePrepare {
                view,
                seq,
                digest,
                batch
            }
        ),
        (any::<u64>(), any::<u64>(), arb_digest(), any::<u32>()).prop_map(
            |(view, seq, digest, replica)| Message::Prepare {
                view,
                seq,
                digest,
                replica
            }
        ),
        (any::<u64>(), any::<u64>(), arb_digest(), any::<u32>()).prop_map(
            |(view, seq, digest, replica)| Message::Commit {
                view,
                seq,
                digest,
                replica
            }
        ),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(
                |(view, client, timestamp, replica, result)| Message::Reply {
                    view,
                    client,
                    timestamp,
                    replica,
                    result
                }
            ),
        (
            any::<u64>(),
            arb_digest(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(seq, state_digest, replica, store_rkey, store_len, store_epoch)| {
                    Message::Checkpoint {
                        seq,
                        state_digest,
                        replica,
                        store_rkey,
                        store_len,
                        store_epoch,
                    }
                }
            ),
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<u64>()).prop_map(
            |(seq, chunk, replica, epoch)| Message::StateRequest {
                seq,
                chunk,
                replica,
                epoch
            }
        ),
        (
            any::<u64>(),
            any::<u64>(),
            arb_digest(),
            proptest::collection::vec(
                (any::<u64>(), any::<u64>(), arb_digest(), arb_batch()).prop_map(
                    |(seq, view, digest, batch)| PreparedProof {
                        seq,
                        view,
                        digest,
                        batch
                    }
                ),
                0..3
            ),
            any::<u32>()
        )
            .prop_map(
                |(new_view, last_stable, checkpoint_digest, prepared, replica)| {
                    Message::ViewChange {
                        new_view,
                        last_stable,
                        checkpoint_digest,
                        prepared,
                        replica,
                    }
                }
            ),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), arb_digest(), batch), 0..3),
            any::<u32>()
        )
            .prop_map(|(view, pre_prepares, replica)| Message::NewView {
                view,
                pre_prepares,
                replica
            }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(view, replica, rkey, slot_size, slots)| {
                Message::SlotGrant {
                    view,
                    replica,
                    rkey,
                    slot_size,
                    slots,
                }
            }),
    ]
}

proptest! {
    /// Every protocol message round-trips through the wire codec.
    #[test]
    fn message_codec_roundtrip(msg in arb_message()) {
        let enc = msg.encode();
        let dec = Message::decode(&enc).expect("well-formed encoding decodes");
        prop_assert_eq!(dec, msg);
    }

    /// Decoding arbitrary bytes never panics (Byzantine input hardening).
    #[test]
    fn message_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes);
        let _ = SignedMessage::decode(&bytes);
    }

    /// Signed messages round-trip and verify end to end.
    #[test]
    fn signed_message_roundtrip(msg in arb_message(),
                                receivers in proptest::collection::btree_set(0u32..8, 1..5)) {
        let keys = KeyTable::new(0, b"prop".to_vec());
        let rvec: Vec<u32> = receivers.iter().copied().collect();
        let signed = SignedMessage::create(&msg, &keys, &rvec);
        let wire = signed.encode();
        let back = SignedMessage::decode(&wire).expect("decodes");
        let table = KeyTable::new(rvec[0], b"prop".to_vec());
        prop_assert_eq!(back.verify_and_decode(&table).expect("no codec error"), Some(msg));
    }

    /// KV operations round-trip; arbitrary payloads never panic the
    /// decoder.
    #[test]
    fn kv_op_roundtrip(k in proptest::collection::vec(any::<u8>(), 0..64),
                       v in proptest::collection::vec(any::<u8>(), 0..64),
                       garbage in proptest::collection::vec(any::<u8>(), 0..128)) {
        for op in [KvOp::Get(k.clone()), KvOp::Put(k.clone(), v), KvOp::Del(k)] {
            prop_assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
        let _ = KvOp::decode(&garbage);
    }

    /// Ledger transactions round-trip; garbage never panics.
    #[test]
    fn transaction_roundtrip(a in "[a-z]{1,12}", b in "[a-z]{1,12}", amount in any::<u64>(),
                             garbage in proptest::collection::vec(any::<u8>(), 0..128)) {
        for tx in [
            Transaction::transfer(&a, &b, amount),
            Transaction::mint(&a, amount),
            Transaction::shipment(&a, &b, &a, &b),
        ] {
            prop_assert_eq!(Transaction::decode(&tx.encode()), Some(tx));
        }
        let _ = Transaction::decode(&garbage);
    }
}

// ---------------------------------------------------------------------
// Simulator & fabric
// ---------------------------------------------------------------------

proptest! {
    /// Events always execute in non-decreasing time order, regardless of
    /// scheduling order.
    #[test]
    fn simulator_time_is_monotone(delays in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut sim = Simulator::new(7);
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![]));
        for d in delays {
            let log = log.clone();
            sim.schedule_in(Nanos::from_nanos(d), Box::new(move |sim| {
                log.borrow_mut().push(sim.now().as_nanos());
            }));
        }
        sim.run_until_idle();
        let log = log.borrow();
        prop_assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Bandwidth serialization is additive and monotone in message size.
    #[test]
    fn bandwidth_monotone(bytes_a in 1usize..1_000_000, bytes_b in 1usize..1_000_000) {
        let bw = Bandwidth::gbps(10);
        let ta = bw.transmit_time(bytes_a);
        let tb = bw.transmit_time(bytes_b);
        if bytes_a <= bytes_b {
            prop_assert!(ta <= tb);
        }
        // Serializing both takes at least as long as the bigger one.
        let both = bw.transmit_time(bytes_a + bytes_b);
        prop_assert!(both >= ta.max(tb));
    }

    /// Identical seeds produce identical simulations (determinism).
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(),
                                   payloads in proptest::collection::vec(1usize..4096, 1..8)) {
        use simnet::{Addr, Frame, TestBed};
        let run = |seed: u64, payloads: &[usize]| -> Vec<u64> {
            use std::cell::RefCell;
            use std::rc::Rc;
            let mut tb = TestBed::paper_testbed(seed);
            let times: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![]));
            let t = times.clone();
            tb.net.bind(Addr::new(tb.b, 1), Box::new(move |sim, _f| {
                t.borrow_mut().push(sim.now().as_nanos());
            }));
            for &p in payloads {
                tb.net.send(&mut tb.sim, Frame::new(Addr::new(tb.a, 1), Addr::new(tb.b, 1), p, ()));
            }
            tb.sim.run_until_idle();
            let out = times.borrow().clone();
            out
        };
        prop_assert_eq!(run(seed, &payloads), run(seed, &payloads));
    }
}

// ---------------------------------------------------------------------
// Blockchain
// ---------------------------------------------------------------------

proptest! {
    /// A chain built through `next_block`/`append` always verifies, and
    /// flipping any transaction breaks verification from that height on.
    #[test]
    fn chain_integrity(amounts in proptest::collection::vec(1u64..1_000, 1..12),
                       tamper_at in any::<prop::sample::Index>()) {
        let mut chain = Chain::new();
        for &a in &amounts {
            let b = chain.next_block(vec![Transaction::mint("acct", a)]);
            chain.append(b).expect("extends tip");
        }
        chain.verify().expect("untampered chain verifies");

        if chain.len() > 2 {
            let h = 1 + tamper_at.index(chain.len() - 2) as u64;
            chain.tamper(h, |b| {
                b.transactions[0] = Transaction::mint("mallory", u64::MAX);
            });
            prop_assert!(chain.verify().is_err());
        }
    }
}

// ---------------------------------------------------------------------
// Statistics: percentiles and histograms
// ---------------------------------------------------------------------

/// Independent nearest-rank reference: sort, then index
/// `round(p/100 · (n-1))`.
fn nearest_rank_reference(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

proptest! {
    /// `LatencyRecorder::percentile` matches the naive nearest-rank
    /// reference and is monotone in `p`, with the usual ordering
    /// invariants.
    #[test]
    fn latency_percentiles_match_reference(samples in proptest::collection::vec(0u64..10_000_000, 1..128)) {
        use simnet::LatencyRecorder;
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(Nanos::from_nanos(s));
        }
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(
                rec.percentile(p).as_nanos(),
                nearest_rank_reference(&samples, p),
                "percentile {} disagrees with the reference", p
            );
        }
        let (min, p50, p99, max) = (
            rec.min().as_nanos(),
            rec.percentile(50.0).as_nanos(),
            rec.percentile(99.0).as_nanos(),
            rec.max().as_nanos(),
        );
        prop_assert!(min <= p50 && p50 <= p99 && p99 <= max);
        prop_assert_eq!(rec.percentile(0.0).as_nanos(), min);
        prop_assert_eq!(rec.percentile(100.0).as_nanos(), max);
        let mean = rec.mean().as_nanos();
        prop_assert!(mean >= min && mean <= max, "mean must lie in [min, max]");
    }

    /// The metrics `Histogram` mirrors the recorder invariants, its
    /// summary is internally consistent, and observation order does not
    /// matter.
    #[test]
    fn metrics_histogram_summary_invariants(samples in proptest::collection::vec(0u64..10_000_000, 1..128)) {
        use simnet::Histogram;
        let mut h = Histogram::new();
        for &s in &samples {
            h.observe(s);
        }
        let sum = h.summary();
        prop_assert_eq!(sum.count, samples.len() as u64);
        prop_assert_eq!(sum.min, *samples.iter().min().unwrap());
        prop_assert_eq!(sum.max, *samples.iter().max().unwrap());
        prop_assert!(sum.min <= sum.p50 && sum.p50 <= sum.p90 && sum.p90 <= sum.p99);
        prop_assert!(sum.p99 <= sum.max);
        prop_assert!(sum.mean >= sum.min && sum.mean <= sum.max);
        prop_assert_eq!(h.percentile(50.0), nearest_rank_reference(&samples, 50.0));

        // Observation order is irrelevant: reversed input, same summary.
        let mut rev = Histogram::new();
        for &s in samples.iter().rev() {
            rev.observe(s);
        }
        prop_assert_eq!(rev.summary(), sum);
    }
}

// ---------------------------------------------------------------------
// Proactive recovery: epoch fencing
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The message-path mirror of the RNIC rkey fence: a `StateRequest`
    /// carrying *any* epoch other than the responder's current recovery
    /// epoch is denied and counted (`stale_epoch_rejected`), while the
    /// current epoch is never counted as stale — for arbitrary request
    /// coordinates and arbitrary distances between the epochs.
    #[test]
    fn state_request_with_stale_epoch_is_denied_and_counted(
        epoch in any::<u64>(),
        current in 0u64..16,
        seq in any::<u64>(),
        chunk in any::<u32>(),
    ) {
        let mut c = Cluster::sim_transport(ReptorConfig::small(), 0, 1, || {
            Box::new(CounterService::default())
        });
        let r = c.replicas[0].clone();
        if current > 0 {
            r.roll_recovery_epoch(&mut c.sim, current);
        }
        prop_assert_eq!(r.recovery_epoch(), current);

        // The current epoch passes the fence (the request may then die
        // for lack of a store, but never as a stale epoch).
        r.inject_message(&mut c.sim, Message::StateRequest {
            seq, chunk, replica: 1, epoch: current,
        });
        prop_assert_eq!(r.stats().stale_epoch_rejected, 0);

        r.inject_message(&mut c.sim, Message::StateRequest {
            seq, chunk, replica: 1, epoch,
        });
        let want = u64::from(epoch != current);
        prop_assert_eq!(r.stats().stale_epoch_rejected, want);
    }
}

// ---------------------------------------------------------------------
// One-sided fast path: slot-region revocation fence
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The fast-path revocation fence, under arbitrary interleavings of
    /// view changes (region roll: invalidate + re-register, exactly what
    /// a follower does when it votes) and leader WRITEs picking any
    /// current-or-historical rkey: a WRITE under a revoked view's rkey is
    /// *never* delivered (no doorbell, slot bytes untouched) and *always*
    /// counted (`fast_path_write_denied`), while the current grant is
    /// never denied.
    #[test]
    fn revoked_slot_rkey_never_delivers_and_is_always_counted(
        ops in proptest::collection::vec(
            proptest::option::of(any::<prop::sample::Index>()),
            1..16,
        ),
    ) {
        use std::cell::RefCell;
        use std::rc::Rc;

        use rdma_verbs::RnicModel;
        use reptor::{RubinTransport, SlotRegion, Transport};
        use rubin::RubinConfig;
        use simnet::{CoreId, HostId, TestBed};

        const LEN: usize = 4096;
        let (mut sim, net, hosts) = TestBed::cluster(1, 2);
        let nodes: Vec<(u32, HostId, CoreId)> = hosts
            .iter()
            .enumerate()
            .map(|(i, &h)| (i as u32, h, CoreId(0)))
            .collect();
        let ts = RubinTransport::build_group(
            &mut sim,
            &net,
            &nodes,
            RnicModel::mt27520(),
            RubinConfig::paper(),
        );
        let leader: Rc<dyn Transport> = Rc::new(ts[0].clone());
        let follower: Rc<dyn Transport> = Rc::new(ts[1].clone());
        sim.run_until_idle();

        // Record every doorbell the follower hears.
        let bells: Rc<RefCell<Vec<(u32, usize)>>> = Rc::new(RefCell::new(vec![]));
        let b = bells.clone();
        follower.set_slot_doorbell(Rc::new(move |_sim, _from, imm, len| {
            b.borrow_mut().push((imm, len));
        }));

        // View 0's grant; `history[i]` is view i's (revoked for i < cur).
        let mut history: Vec<SlotRegion> = vec![follower
            .register_write_region(&mut sim, LEN)
            .expect("rubin has a one-sided write path")];

        for op in ops {
            match op {
                // A view change at the follower: invalidate the granted
                // region (RNIC fence) and register a fresh one for the
                // next leader.
                None => {
                    follower.release_write_region(history.last().unwrap());
                    history.push(
                        follower
                            .register_write_region(&mut sim, LEN)
                            .expect("re-registration after the roll"),
                    );
                }
                // A leader WRITE under the rkey of view `idx` — possibly
                // long revoked, possibly current.
                Some(idx) => {
                    let view = idx.index(history.len());
                    let region = history[view];
                    let stale = view != history.len() - 1;
                    let denied_before = net.metrics().total("fast_path_write_denied");
                    let bells_before = bells.borrow().len();
                    let payload = format!("write-for-view-{view}").into_bytes();
                    let expected = payload.clone();
                    let acked: Rc<RefCell<Option<bool>>> = Rc::new(RefCell::new(None));
                    let a = acked.clone();
                    let posted = leader.write_slot(
                        &mut sim,
                        1,
                        region.rkey,
                        0,
                        &payload,
                        7,
                        Box::new(move |_sim, ok| {
                            *a.borrow_mut() = Some(ok);
                        }),
                    );
                    prop_assert!(posted, "rubin must always take the WRITE");
                    // Drain the WRITE, its completion (or NAK), and any
                    // channel redial the denial provoked.
                    sim.run_until_idle();
                    let denied_after = net.metrics().total("fast_path_write_denied");
                    let bells_after = bells.borrow().len();
                    if stale {
                        prop_assert!(
                            denied_after > denied_before,
                            "a revoked rkey must be counted at the RNIC"
                        );
                        prop_assert_eq!(
                            bells_after, bells_before,
                            "a revoked rkey must never ring the doorbell"
                        );
                        prop_assert_eq!(*acked.borrow(), Some(false));
                        // The *current* region is untouched by the stale
                        // WRITE.
                        let cur = history.last().unwrap();
                        let bytes = follower
                            .read_write_region(cur, 0, expected.len())
                            .expect("current region is readable");
                        prop_assert_ne!(bytes, expected);
                        // The NAK killed the queue pair — exactly what
                        // pushes the real replica onto the message-path
                        // fallback. Message traffic makes both ends
                        // notice and the dialing side re-dial; let the
                        // backoff run so later WRITEs find a live
                        // channel again.
                        leader.send(&mut sim, 1, b"ping".to_vec());
                        follower.send(&mut sim, 0, b"pong".to_vec());
                        sim.run_until(sim.now() + Nanos::from_millis(200));
                    } else {
                        prop_assert_eq!(
                            denied_after, denied_before,
                            "the current leader must never be denied"
                        );
                        prop_assert_eq!(bells_after, bells_before + 1);
                        prop_assert_eq!(*acked.borrow(), Some(true));
                        let bytes = follower
                            .read_write_region(&region, 0, expected.len())
                            .expect("granted region is readable");
                        prop_assert_eq!(bytes, expected);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Durability: WAL clean-prefix scanning
// ---------------------------------------------------------------------

use reptor::{encode_frame, scan_frames, WalFrame};

/// A seq-contiguous WAL frame sequence starting at an arbitrary base, as
/// `append_batch` would have produced it.
fn arb_wal_frames() -> impl Strategy<Value = Vec<WalFrame>> {
    (
        0u64..1_000_000,
        proptest::collection::vec((arb_digest(), arb_batch()), 1..8),
    )
        .prop_map(|(base, bodies)| {
            bodies
                .into_iter()
                .enumerate()
                .map(|(i, (digest, requests))| WalFrame {
                    seq: base + 1 + i as u64,
                    digest,
                    requests,
                })
                .collect()
        })
}

/// Byte extent `[start, end)` of each encoded frame in the concatenation.
fn frame_extents(frames: &[WalFrame]) -> Vec<(usize, usize)> {
    let mut extents = Vec::with_capacity(frames.len());
    let mut pos = 0;
    for f in frames {
        let len = encode_frame(f).len();
        extents.push((pos, pos + len));
        pos += len;
    }
    extents
}

proptest! {
    /// An intact WAL scans back to exactly the frames that were appended.
    #[test]
    fn wal_scan_roundtrip(frames in arb_wal_frames()) {
        let bytes: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let scan = scan_frames(&bytes);
        prop_assert_eq!(&scan.frames, &frames);
        prop_assert_eq!(scan.valid_bytes, bytes.len() as u64);
        prop_assert!(!scan.truncated);
    }

    /// A WAL cut at ANY byte position — the torn-write model: the tail
    /// vanishes mid-frame — scans to exactly the frames wholly inside the
    /// cut, flags truncation iff partial bytes remain, and never panics
    /// or invents a frame.
    #[test]
    fn wal_prefix_truncation_yields_exact_frame_prefix(
        frames in arb_wal_frames(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let cut = cut.index(bytes.len() + 1);
        let extents = frame_extents(&frames);
        let whole = extents.iter().filter(|&&(_, end)| end <= cut).count();
        let scan = scan_frames(&bytes[..cut]);
        prop_assert_eq!(&scan.frames, &frames[..whole]);
        prop_assert_eq!(scan.valid_bytes, extents.get(whole.wrapping_sub(1)).map_or(0, |&(_, e)| e) as u64);
        prop_assert_eq!(scan.truncated, cut > scan.valid_bytes as usize);
    }

    /// A single corrupted byte anywhere in the WAL — header, CRC field or
    /// payload — kills exactly the frame it lands in: every frame before
    /// it survives, nothing at or after it is returned, and nothing
    /// panics. (CRC32 detects every ≤32-bit burst, so a one-byte flip in
    /// a payload can never slip through.)
    #[test]
    fn wal_single_byte_corruption_yields_clean_prefix(
        frames in arb_wal_frames(),
        at in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let mut bytes: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let at = at.index(bytes.len());
        bytes[at] ^= mask;
        let extents = frame_extents(&frames);
        let hit = extents.iter().position(|&(s, e)| s <= at && at < e).expect("flip lands in a frame");
        let scan = scan_frames(&bytes);
        prop_assert_eq!(&scan.frames, &frames[..hit]);
        prop_assert!(scan.truncated, "the damaged tail must be flagged");
    }

    /// Scanning arbitrary garbage never panics and never yields more
    /// bytes of "valid prefix" than it was given.
    #[test]
    fn wal_scan_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let scan = scan_frames(&bytes);
        prop_assert!(scan.valid_bytes as usize <= bytes.len());
    }
}

// ---------------------------------------------------------------------
// RUBIN data structures
// ---------------------------------------------------------------------

proptest! {
    /// The hybrid event queue is strictly FIFO.
    #[test]
    fn hybrid_queue_fifo(keys in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut q = HybridEventQueue::new();
        for &k in &keys {
            q.push(rubin::RubinEvent::Completion { key: rubin::RubinKey(k) });
        }
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            if let rubin::RubinEvent::Completion { key } = ev {
                out.push(key.0);
            }
        }
        prop_assert_eq!(out, keys);
    }
}

// ---------------------------------------------------------------------
// Geo topology
// ---------------------------------------------------------------------

fn geo_wan_cluster(seed: u64) -> Cluster {
    let topo = simnet::LatencyMatrix::three_region_wan();
    Cluster::sim_transport_geo(ReptorConfig::small(), 1, 1, seed, &topo, || {
        Box::new(CounterService::default())
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Coordinate-derived matrices respect the triangle inequality for
    /// every region triple, for arbitrary coordinates and scales — the
    /// min-plus closure must absorb any rounding artifacts.
    #[test]
    fn coordinate_matrices_respect_triangle(
        raw in proptest::collection::vec((0u64..2_000, 0u64..2_000), 2..7),
        scale in 1u64..50_000,
    ) {
        let named: Vec<(String, f64, f64)> = raw
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (format!("r{i}"), x as f64 / 10.0, y as f64 / 10.0))
            .collect();
        let regions: Vec<(&str, f64, f64)> =
            named.iter().map(|(n, x, y)| (n.as_str(), *x, *y)).collect();
        let m = simnet::LatencyMatrix::from_coordinates(
            &regions,
            scale as f64,
            Nanos::from_micros(1),
            Bandwidth::gbps(2),
        );
        let n = m.num_regions();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(
                        m.one_way(i, j) <= m.one_way(i, k) + m.one_way(k, j),
                        "triangle violated: {}->{} via {}", i, j, k
                    );
                }
            }
        }
        // Sanity on the derived protocol floor.
        prop_assert!(m.suggested_timeout() >= Nanos::from_millis(10));
        prop_assert!(
            m.suggested_timeout().as_nanos() >= m.max_one_way().as_nanos() * 8
        );
    }

    /// Chaos faults compose with WAN links: arbitrary loss on a random
    /// inter-region pair never breaks agreement (retransmission absorbs
    /// it), and the whole faulty timeline replays byte-identically from
    /// the same seed.
    #[test]
    fn wan_chaos_replays_byte_identically(
        seed in 1u64..1_000_000,
        src in 0u32..4,
        dst in 0u32..4,
        loss_pct in 1u64..30,
    ) {
        let run = |seed: u64| {
            let mut c = geo_wan_cluster(seed);
            c.net.with_faults(|f| {
                f.set_loss(
                    simnet::HostId(src),
                    simnet::HostId(dst % 4),
                    loss_pct as f64 / 100.0,
                );
            });
            let client = c.clients[0].clone();
            for _ in 0..2 {
                client.submit(&mut c.sim, b"inc".to_vec());
            }
            prop_assert!(
                c.run_until_completed(2, 50_000_000),
                "lossy WAN run must still commit"
            );
            c.assert_safety();
            c.settle();
            Ok(c.metrics_snapshot().to_json())
        };
        prop_assert_eq!(run(seed)?, run(seed)?);
    }
}
