//! # rubin-repro — umbrella crate
//!
//! Re-exports the whole workspace for convenient use from examples and
//! integration tests. See the individual crates for full documentation:
//!
//! * [`simnet`] — deterministic discrete-event network/host simulator.
//! * [`rdma_verbs`] — simulated RDMA Verbs stack (PD/MR/QP/CQ/CM).
//! * [`simnet_socket`] — simulated kernel TCP + Java-NIO-style selector.
//! * [`rubin`] — the paper's contribution: the RUBIN RDMA selector
//!   framework.
//! * [`bft_crypto`] — SHA-256 / HMAC / MAC-vector authenticators.
//! * [`reptor`] — PBFT state-machine replication with COP parallelization.
//! * [`chainstore`] — permissioned blockchain on top of `reptor`.

pub use bft_crypto;
pub use chainstore;
pub use rdma_verbs;
pub use reptor;
pub use rubin;
pub use simnet;
pub use simnet_socket;
