//! Offline stand-in for the `serde` crate.
//!
//! The workspace only uses serde as a *declaration of intent*: types derive
//! `Serialize`/`Deserialize` so a future wire format can pick them up, but no
//! serde-based serializer runs in this offline build (JSON output is
//! hand-rolled in `simnet::metrics`). The shim therefore provides the two
//! trait names as markers and re-exports pass-through derive macros under the
//! usual `derive` feature.

/// Marker for types declared serializable.
pub trait Serialize {}

/// Marker for types declared deserializable.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
