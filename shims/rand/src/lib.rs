//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access to a crates registry, so the
//! workspace vendors the thin slice of `rand` it actually uses: a seedable
//! deterministic `StdRng` plus the `Rng` convenience methods
//! (`gen`, `gen_bool`, `gen_range`). The generator is xoshiro256** seeded
//! through SplitMix64 — high-quality and fully deterministic, which is all
//! the simulator needs. It is **not** cryptographically secure.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from a uniform random stream via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Draws a value of type `T` from the uniform stream.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: usize = r.gen_range(128..=512);
            assert!((128..=512).contains(&v));
            let w: u64 = r.gen_range(5u64..6);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
