//! Test-runner types: configuration, the deterministic RNG, and case errors.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; this shim never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            fork: false,
        }
    }
}

/// A failed property case, carrying the rendered assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator feeding every strategy (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name, so each property gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
