//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Generates `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates `BTreeSet`s of `element` with a target size drawn from `size`.
/// If the element domain is too small, the set may come out smaller but
/// never below one element when `size` starts above zero.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let want = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < want && attempts < want * 10 + 100 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}
