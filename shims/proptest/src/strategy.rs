//! The [`Strategy`] trait and the combinators this workspace uses.

use std::marker::PhantomData;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is simply a deterministic function of the test RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then with the strategy `f` derives from the
    /// value (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(move |rng| self.new_value(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A boxed generator arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among same-valued strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// Builds a union from boxed arms (see [`Union::arm`]).
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one strategy as a union arm.
    pub fn arm<S>(strat: S) -> UnionArm<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| strat.new_value(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

/// `any::<T>()` support struct; see [`crate::arbitrary::any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}
