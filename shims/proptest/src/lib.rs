//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates registry, so the workspace
//! vendors the subset of proptest it uses: the [`Strategy`] trait with the
//! combinators that appear in our tests (`prop_map`, tuples, collections,
//! `prop_oneof!`, ranges, a small regex-class string strategy), `any::<T>()`,
//! and the `proptest!` / `prop_assert!` macros.
//!
//! Differences from real proptest, chosen deliberately for an offline,
//! reproducible test suite:
//!
//! * **Deterministic**: every test function derives its RNG seed from its own
//!   name, so runs are reproducible with no persistence files.
//! * **No shrinking**: a failing case reports its inputs' case number; the
//!   suite treats `max_shrink_iters` as always 0.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable prelude, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Shorthand module tree, mirroring `proptest::prelude::prop`.
        pub use crate::{collection, option, sample, strategy, string};
    }
}

/// Runs `cases` iterations of a generate-and-check closure. Backs the
/// `proptest!` macro; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases<F>(name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = test_runner::TestRng::deterministic(name);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {}/{}: {e}",
                i + 1,
                config.cases
            );
        }
    }
}

/// Declares property-based test functions.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_cases(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Builds a strategy choosing uniformly among the listed strategies, all of
/// which must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::arm($strat) ),+
        ])
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current proptest case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the current proptest case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}
