//! `any::<T>()` and the [`Arbitrary`] trait.

use std::marker::PhantomData;

use crate::strategy::Any;
use crate::test_runner::TestRng;

/// Types with a canonical uniform strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn generate(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn generate(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::generate(rng);
        }
        out
    }
}
