//! Sampling helpers: the collection-independent [`Index`].

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An arbitrary index usable against any non-empty collection length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects this index onto a collection of `size` elements.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on an empty collection");
        (self.0 % size as u64) as usize
    }
}

impl Arbitrary for Index {
    fn generate(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
