//! The `option::of` strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `None` or `Some(inner)` with equal probability.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}
