//! A tiny regex-subset string generator backing `&str` strategies.
//!
//! Supports the patterns this workspace's tests use: literal characters,
//! character classes with ranges (`[a-z0-9_]`), and the repetition suffixes
//! `{n}`, `{m,n}`, `?`, `*` and `+` (the unbounded forms cap at 8 repeats).
//! Anything fancier panics with a clear message.

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alternatives: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let class = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 2;
                vec![c]
            }
            c @ ('(' | ')' | '|' | '.' | '^' | '$') => {
                panic!("regex feature {c:?} unsupported by the proptest shim (pattern {pattern:?})")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = parse_repeat(&chars, &mut i, pattern);
        let n = lo + (rng.below((hi - lo + 1) as u64) as u32);
        for _ in 0..n {
            let k = rng.below(alternatives.len() as u64) as usize;
            out.push(alternatives[k]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty character class in {pattern:?}");
    assert!(body[0] != '^', "negated classes unsupported in {pattern:?}");
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (a, b) = (body[i] as u32, body[i + 2] as u32);
            assert!(a <= b, "inverted class range in {pattern:?}");
            for c in a..=b {
                out.push(char::from_u32(c).expect("valid range char"));
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

/// Parses an optional repetition suffix at `*i`, advancing past it.
/// Returns the inclusive `(min, max)` repeat counts.
fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (u32, u32) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse = |s: &str| -> u32 {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repeat count {s:?} in {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_counted_repeat() {
        let mut rng = TestRng::deterministic("class_with_counted_repeat");
        for _ in 0..200 {
            let s = generate("[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = TestRng::deterministic("literals_and_escapes");
        assert_eq!(generate("abc", &mut rng), "abc");
        assert_eq!(generate(r"a\[b", &mut rng), "a[b");
    }
}
