//! Pass-through `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! Because the shimmed traits are inert markers, the derives only need to
//! emit `impl serde::Trait for Type {}`. The input is parsed by hand (no
//! `syn`/`quote` available offline): scan top-level tokens for the
//! `struct`/`enum` keyword and take the following identifier as the type
//! name. Generic types are intentionally unsupported — every derived type in
//! this workspace is concrete.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive shim: expected a struct or enum");
}
