//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's `harness = false` benches use —
//! `Criterion::benchmark_group`, chained group configuration,
//! `bench_with_input` with `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple mean-of-N wall-clock timer
//! instead of criterion's statistical machinery. Good enough to smoke-run
//! benches offline and to keep `cargo test`/`cargo bench` compiling.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepted for API compatibility; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this shim does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this shim times exactly
    /// `sample_size` runs.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            rounds: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Runs one unparameterized benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            rounds: self.sample_size,
        };
        f(&mut b);
        self.report(&name.to_string(), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{label}: no iterations", self.name);
            return;
        }
        let mean = b.total.as_nanos() as f64 / b.iters as f64;
        println!("{}/{label}: {:.1} ns/iter (n={})", self.name, mean, b.iters);
    }
}

/// Identifies a benchmark within a group by function name and parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and its parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Times closures handed to it by the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
    rounds: usize,
}

impl Bencher {
    /// Times `rounds` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.rounds {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
